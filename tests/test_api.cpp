// Facade tests: Spec validation, SpecBuilder <-> JSON loader agreement,
// spec -> JSON -> spec round-trips, and — the core guarantee — Runner::run
// being bitwise-identical to hand-assembling the same InferenceEngine /
// ComparisonRunner / Server pipeline on the committed specs/*.json.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "deepcam/deepcam.hpp"

#ifndef DEEPCAM_SPEC_DIR
#error "DEEPCAM_SPEC_DIR must be defined by the build"
#endif

namespace deepcam {
namespace {

std::string spec_path(const std::string& name) {
  return std::string(DEEPCAM_SPEC_DIR) + "/" + name;
}

/// Bitwise RunReport equality: every counter and every energy double must
/// match exactly (the facade may not perturb the simulation in any way).
void expect_reports_equal(const core::RunReport& a,
                          const core::RunReport& b) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    const core::LayerReport& la = a.layers[i];
    const core::LayerReport& lb = b.layers[i];
    EXPECT_EQ(la.name, lb.name);
    EXPECT_EQ(la.patches, lb.patches);
    EXPECT_EQ(la.kernels, lb.kernels);
    EXPECT_EQ(la.context_len, lb.context_len);
    EXPECT_EQ(la.hash_bits, lb.hash_bits);
    EXPECT_EQ(la.cycles, lb.cycles);
    EXPECT_EQ(la.plan.passes, lb.plan.passes);
    EXPECT_EQ(la.plan.searches, lb.plan.searches);
    EXPECT_EQ(la.plan.rows_written, lb.plan.rows_written);
    EXPECT_EQ(la.plan.dot_products, lb.plan.dot_products);
    EXPECT_EQ(la.cam_energy, lb.cam_energy);
    EXPECT_EQ(la.postproc_energy, lb.postproc_energy);
    EXPECT_EQ(la.ctxgen_energy, lb.ctxgen_energy);
  }
  EXPECT_EQ(a.peripheral_cycles, b.peripheral_cycles);
  EXPECT_EQ(a.cam_area_um2, b.cam_area_um2);
}

// --- validation -----------------------------------------------------------

TEST(Spec, ValidateRejectsBadSpecs) {
  EXPECT_THROW(SpecBuilder("x").build(), Error);  // no workloads
  EXPECT_THROW(SpecBuilder("x").workload("alexnet").build(), Error);
  EXPECT_THROW(SpecBuilder("x").workload("lenet5").hash_bits(100).build(),
               Error);
  EXPECT_THROW(SpecBuilder("x").workload("lenet5").hash_bits(2048).build(),
               Error);
  EXPECT_THROW(
      SpecBuilder("x").workload("lenet5").batch_sizes({}).build(), Error);
  EXPECT_THROW(
      SpecBuilder("x").workload("lenet5").batch_sizes({0}).build(), Error);
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kOffline)
                   .workload("lenet5")
                   .workload("vgg11")
                   .build(),
               Error);  // offline takes exactly one workload
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kCompare)
                   .custom_workload("inline", 1, 8, 8)
                   .linear("fc", 64, 10)
                   .build(),
               Error);  // compare sweeps named topologies only
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kCompare)
                   .workload("lenet5")
                   .backends({"tpu"})
                   .build(),
               Error);
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kServe)
                   .workload("lenet5")
                   .serve_trace("uniform", 10, 100.0)
                   .build(),
               Error);
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kServe)
                   .workload("lenet5")
                   .serve_tiers({512, 512})
                   .build(),
               Error);  // duplicate tier = duplicate session name
  EXPECT_THROW(SpecBuilder("x")
                   .custom_workload("inline", 1, 8, 8)
                   .conv2d("c", 1, 0, 3)
                   .build(),
               Error);  // zero out_channels
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kTune)
                   .workload("lenet5")
                   .vhl(0.5, /*probes=*/0)
                   .build(),
               Error);  // tune always runs the tuner; probes must be sane
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kCompare)
                   .workload("lenet5")
                   .trace_output("t.json")
                   .build(),
               Error);  // span traces exist for offline/serve runs only
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kOffline)
                   .workload("lenet5")
                   .metrics_output("m.prom")
                   .build(),
               Error);  // Prometheus exposition mirrors a server
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kTune)
                   .workload("lenet5")
                   .profile()
                   .build(),
               Error);  // profiling aggregates offline/serve spans
  EXPECT_THROW(SpecBuilder("x")
                   .mode(Mode::kServe)
                   .workload("lenet5")
                   .serve_trace("closed", 10, 100.0)
                   .serve_clients(4)
                   .serve_virtual_time()
                   .build(),
               Error);  // closed-loop clients block real threads
}

TEST(Spec, ModeNames) {
  EXPECT_EQ(mode_from_name("offline"), Mode::kOffline);
  EXPECT_EQ(mode_from_name("run"), Mode::kOffline);  // CLI alias
  EXPECT_EQ(mode_from_name("compare"), Mode::kCompare);
  EXPECT_EQ(mode_from_name("serve"), Mode::kServe);
  EXPECT_EQ(mode_from_name("tune"), Mode::kTune);
  EXPECT_THROW(mode_from_name("online"), Error);
  EXPECT_STREQ(mode_name(Mode::kServe), "serve");
}

// --- JSON loader diagnostics ---------------------------------------------

TEST(SpecIo, UnknownKeysAreTypedErrors) {
  const char* doc = R"({
  "name": "x",
  "workload": {"topology": "lenet5"},
  "acelerator": {"cam_rows": 64}
})";
  try {
    spec_from_json_text(doc);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown key \"acelerator\""),
              std::string::npos)
        << e.what();
    EXPECT_EQ(e.line(), 4u);
  }
}

TEST(SpecIo, SemanticErrorsPointAtTheValue) {
  EXPECT_THROW(spec_from_json_text(R"({"workload": {}})"), ParseError);
  EXPECT_THROW(
      spec_from_json_text(
          R"({"workload": {"topology": "lenet5", "layers": []}})"),
      ParseError);  // both topology and layers
  EXPECT_THROW(
      spec_from_json_text(
          R"({"mode": "offline", "workload": {"topology": "lenet5"},
              "accelerator": {"dataflow": "diagonal"}})"),
      ParseError);
  EXPECT_THROW(spec_from_json_text(R"({"mode": "sideways",
              "workload": {"topology": "lenet5"}})"),
               ParseError);
  EXPECT_THROW(spec_from_json_text(R"({"name": "x"})"),
               ParseError);  // no workload section at all
  // Topologies own their geometry and name; the inline-only keys would be
  // silently ignored, so they are rejected.
  EXPECT_THROW(
      spec_from_json_text(
          R"({"workload": {"topology": "lenet5",
              "input": {"height": 64, "width": 64}}})"),
      ParseError);
  EXPECT_THROW(
      spec_from_json_text(
          R"({"workload": {"topology": "lenet5", "name": "alias"}})"),
      ParseError);
  // Validation errors surface as Error (not silently clamped).
  EXPECT_THROW(
      spec_from_json_text(
          R"({"workload": {"topology": "lenet5"},
              "accelerator": {"hash_bits": 100}})"),
      Error);
}

// --- round-trips ----------------------------------------------------------

void expect_roundtrip_stable(const Spec& spec) {
  const std::string once = spec_to_json(spec);
  const Spec reparsed = spec_from_json_text(once);
  EXPECT_EQ(spec_to_json(reparsed), once);
}

TEST(SpecIo, BuilderSpecsRoundTrip) {
  expect_roundtrip_stable(SpecBuilder("a")
                              .mode(Mode::kCompare)
                              .workload("lenet5", 3)
                              .batch_sizes({1, 4, 16})
                              .workload("vgg11", 9)
                              .vhl(0.4, 3)
                              .include_vhl()
                              .backends({"deepcam", "eyeriss"})
                              .csv_output()
                              .build());
  expect_roundtrip_stable(SpecBuilder("b")
                              .mode(Mode::kOffline)
                              .custom_workload("tiny", 2, 6, 6, 11)
                              .conv2d("c1", 2, 4, 3, 1, 1)
                              .relu()
                              .avgpool(2, 2)
                              .flatten()
                              .linear("fc", 36, 5)
                              .softmax()
                              .cam_rows(32)
                              .dataflow(core::Dataflow::kWeightStationary)
                              .preset(core::CyclePreset::kIdealized)
                              .hash_bits(512)
                              .layer_hash_bits({256, 512})
                              .hash_seed(9)
                              .engine_threads(2)
                              .offline_batch(3)
                              .input_seed(77)
                              .json_output("out.json")
                              .per_sample()
                              .build());
  expect_roundtrip_stable(SpecBuilder("c")
                              .mode(Mode::kServe)
                              .workload("lenet5", 7)
                              .serve_tiers({768})
                              .serve_workers(3)
                              .serve_queue(64)
                              .serve_batch(4, 1500)
                              .serve_trace("bursty", 40, 250.0, 5)
                              .serve_clients(6)
                              .serve_deadlines(30000, 100000, 400000)
                              .serve_shed(1.0, 0.8, 0.4)
                              .serve_downgrade(0.6)
                              .serve_class_mix(0.2, 0.6, 0.2)
                              .text_output(false)
                              .build());
}

TEST(SpecIo, CommittedSpecsLoadAndRoundTrip) {
  for (const char* name :
       {"quickstart.json", "table1.json", "serve_demo.json",
        "serve_slo.json", "serve_trace.json", "fig5_tune.json"}) {
    SCOPED_TRACE(name);
    const Spec spec = spec_from_file(spec_path(name));
    expect_roundtrip_stable(spec);
  }
  EXPECT_EQ(spec_from_file(spec_path("quickstart.json")).mode,
            Mode::kOffline);
  EXPECT_EQ(spec_from_file(spec_path("table1.json")).mode, Mode::kCompare);
  EXPECT_EQ(spec_from_file(spec_path("serve_demo.json")).mode, Mode::kServe);
  EXPECT_EQ(spec_from_file(spec_path("serve_slo.json")).mode, Mode::kServe);
  EXPECT_EQ(spec_from_file(spec_path("serve_trace.json")).mode, Mode::kServe);
  EXPECT_EQ(spec_from_file(spec_path("fig5_tune.json")).mode, Mode::kTune);
}

TEST(SpecIo, BuilderMatchesCommittedSpecs) {
  // The SpecBuilder and the JSON file are two doors to the same Spec: the
  // builder equivalents of the committed specs must produce byte-identical
  // canonical JSON.
  const Spec quickstart = SpecBuilder("quickstart")
                              .mode(Mode::kOffline)
                              .custom_workload("demo_cnn", 1, 16, 16, 1)
                              .conv2d("conv1", 1, 8, 3, 1, 1)
                              .relu("relu1")
                              .maxpool(2, 2)
                              .flatten("flat")
                              .linear("fc", 512, 10)
                              .offline_batch(8)
                              .build();
  EXPECT_EQ(spec_to_json(quickstart),
            spec_to_json(spec_from_file(spec_path("quickstart.json"))));

  const Spec table1 = SpecBuilder("table1-compare")
                          .mode(Mode::kCompare)
                          .workload("lenet5", 1)
                          .batch_sizes({1, 8})
                          .vhl(0.5, 4)
                          .include_vhl()
                          .build();
  EXPECT_EQ(spec_to_json(table1),
            spec_to_json(spec_from_file(spec_path("table1.json"))));

  const Spec serve_demo = SpecBuilder("serve-demo")
                              .mode(Mode::kServe)
                              .workload("lenet5", 7)
                              .engine_threads(2)
                              .serve_tiers({1024, 256})
                              .serve_workers(4)
                              .serve_queue(512)
                              .serve_batch(8, 2000)
                              .serve_trace("poisson", 96, 400.0, 1)
                              .build();
  EXPECT_EQ(spec_to_json(serve_demo),
            spec_to_json(spec_from_file(spec_path("serve_demo.json"))));

  const Spec serve_slo = SpecBuilder("serve-slo")
                             .mode(Mode::kServe)
                             .workload("lenet5", 7)
                             .engine_threads(2)
                             .serve_tiers({1024, 256})
                             .serve_workers(4)
                             .serve_queue(256)
                             .serve_batch(8, 2000)
                             .serve_trace("flash", 128, 400.0, 7)
                             .serve_deadlines(40000, 120000, 500000)
                             .serve_shed(1.0, 0.75, 0.35)
                             .serve_downgrade(0.5)
                             .serve_class_mix(0.25, 0.5, 0.25)
                             .build();
  EXPECT_EQ(spec_to_json(serve_slo),
            spec_to_json(spec_from_file(spec_path("serve_slo.json"))));

  const Spec serve_trace = SpecBuilder("serve-trace")
                               .mode(Mode::kServe)
                               .workload("lenet5", 7)
                               .engine_threads(2)
                               .serve_tiers({1024, 256})
                               .serve_workers(4)
                               .serve_queue(128)
                               .serve_batch(8, 2000)
                               .serve_trace("flash", 96, 400.0, 7)
                               .serve_deadlines(40000, 120000, 500000)
                               .serve_shed(1.0, 0.75, 0.35)
                               .serve_downgrade(0.5)
                               .serve_class_mix(0.25, 0.5, 0.25)
                               .serve_replicas(2)
                               .serve_retry(1, 2, 3)
                               .serve_chaos(0.05, "crash", 1)
                               .serve_chaos(0.15, "heal", 1)
                               .serve_virtual_time()
                               .build();
  EXPECT_EQ(spec_to_json(serve_trace),
            spec_to_json(spec_from_file(spec_path("serve_trace.json"))));
}

// --- build_model ----------------------------------------------------------

TEST(Spec, BuildModelInlineMatchesManualConstruction) {
  const Spec spec = spec_from_file(spec_path("quickstart.json"));
  const Workload& w = spec.workloads.front();
  const auto from_spec = build_model(w);

  // Inline weight layers are seeded workload.seed + layer index.
  nn::Model manual("demo_cnn");
  manual.add(std::make_unique<nn::Conv2D>(
      "conv1", nn::ConvSpec{1, 8, 3, 3, 1, 1}, /*seed=*/1));
  manual.add(std::make_unique<nn::ReLU>("relu1"));
  manual.add(std::make_unique<nn::MaxPool>("maxpool2", 2, 2));
  manual.add(std::make_unique<nn::Flatten>("flat"));
  manual.add(std::make_unique<nn::Linear>("fc", 512, 10, /*seed=*/5));

  const nn::Tensor probe =
      sim::make_probe_batch(w.input_shape(), 1).front();
  const nn::Tensor a = from_spec->infer(probe);
  const nn::Tensor b = manual.infer(probe);
  ASSERT_EQ(a.numel(), b.numel());
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

// --- facade equivalence (the tentpole guarantee) --------------------------

TEST(RunnerEquivalence, OfflineSpecMatchesDirectEngine) {
  const Spec spec = spec_from_file(spec_path("quickstart.json"));
  const Outcome outcome = Runner().run(spec);
  const core::BatchReport& facade = outcome.offline().report;

  const Workload& w = spec.workloads.front();
  const auto model = build_model(w);
  const auto compiled = std::make_shared<const core::CompiledModel>(
      *model, spec.accelerator.config());
  core::InferenceEngine engine(compiled, spec.accelerator.engine_threads);
  core::BatchReport direct;
  engine.run_batch(
      sim::make_probe_batch(w.input_shape(), spec.offline.batch,
                            spec.offline.input_seed),
      &direct);

  ASSERT_EQ(facade.samples, direct.samples);
  ASSERT_EQ(facade.per_sample.size(), direct.per_sample.size());
  expect_reports_equal(facade.aggregate, direct.aggregate);
  for (std::size_t i = 0; i < facade.per_sample.size(); ++i)
    expect_reports_equal(facade.per_sample[i], direct.per_sample[i]);
}

TEST(RunnerProfile, OfflineProfileAggregatesKernelStages) {
  Spec spec = spec_from_file(spec_path("quickstart.json"));
  // Without profiling the outcome keeps the pre-profiling document shape.
  const Outcome plain = Runner().run(spec);
  EXPECT_TRUE(plain.offline().profile.empty());
  EXPECT_EQ(outcome_to_json(plain).find("\"profile\""), std::string::npos);

  spec.outputs.profile = true;
  const Outcome traced = Runner().run(spec);
  const auto& rows = traced.offline().profile;
  ASSERT_FALSE(rows.empty());
  double share = 0.0;
  bool saw_kernel = false;
  for (const auto& r : rows) {
    share += r.share;
    EXPECT_GT(r.count, 0u) << r.stage;
    if (r.stage.rfind("kernel/", 0) == 0) saw_kernel = true;
  }
  EXPECT_TRUE(saw_kernel) << "profile should include kernel-stage spans";
  EXPECT_NEAR(share, 1.0, 1e-9);
  // The profiled run appends the table to both serializations.
  EXPECT_NE(outcome_to_json(traced).find("\"profile\""), std::string::npos);
  EXPECT_NE(outcome_text(traced).find("Stage profile"), std::string::npos);
  // Identical simulated work: profiling must not perturb the report.
  EXPECT_EQ(traced.offline().report.aggregate.total_cycles(),
            plain.offline().report.aggregate.total_cycles());
}

TEST(RunnerEquivalence, CompareSpecMatchesDirectComparisonRunner) {
  const Spec spec = SpecBuilder("equiv-compare")
                        .mode(Mode::kCompare)
                        .workload("lenet5", 1)
                        .batch_sizes({1})
                        .build();
  const Outcome outcome = Runner().run(spec);
  const sim::ComparisonReport& facade = outcome.compare().report;

  const sim::BackendRegistry registry = sim::default_registry();
  const sim::ComparisonRunner direct_runner(registry);
  const sim::ComparisonReport direct =
      direct_runner.run({sim::WorkloadSpec{"lenet5", 1, {1}}});

  ASSERT_EQ(facade.rows.size(), direct.rows.size());
  for (std::size_t i = 0; i < facade.rows.size(); ++i) {
    const sim::PlatformResult& a = facade.rows[i];
    const sim::PlatformResult& b = direct.rows[i];
    EXPECT_EQ(a.backend, b.backend);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.total_energy_j, b.total_energy_j);
    EXPECT_EQ(a.extra_cycles, b.extra_cycles);
    EXPECT_EQ(a.peak_efficiency, b.peak_efficiency);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
      EXPECT_EQ(a.layers[l].macs, b.layers[l].macs);
      EXPECT_EQ(a.layers[l].cycles, b.layers[l].cycles);
      EXPECT_EQ(a.layers[l].energy_j, b.layers[l].energy_j);
    }
  }
}

TEST(RunnerEquivalence, TuneSpecMatchesGuidedPlanner) {
  // Tune mode runs the model-guided accuracy pass by default; the facade
  // must be bitwise-identical to calling Planner::guided_tune directly with
  // the config the runner derives from the spec.
  const Spec spec = spec_from_file(spec_path("fig5_tune.json"));
  const Outcome outcome = Runner().run(spec);
  ASSERT_EQ(outcome.tune().entries.size(), 1u);
  const core::TuneResult& facade = outcome.tune().entries[0].result;

  const Workload& w = spec.workloads.front();
  const auto model = build_model(w);
  plan::PlannerConfig cfg;
  cfg.objective = plan::objective_from_name(spec.plan.objective);
  cfg.batch = spec.plan.batch;
  cfg.max_rel_error = spec.accelerator.vhl_max_rel_error;
  cfg.probes = spec.accelerator.vhl_probes;
  cfg.base = spec.accelerator.config();
  const core::TuneResult direct =
      plan::Planner(*model, w.input_shape()).guided_tune(cfg);

  ASSERT_EQ(facade.hash_bits, direct.hash_bits);
  ASSERT_EQ(facade.layers.size(), direct.layers.size());
  for (std::size_t i = 0; i < facade.layers.size(); ++i) {
    EXPECT_EQ(facade.layers[i].chosen_bits, direct.layers[i].chosen_bits);
    EXPECT_EQ(facade.layers[i].metric, direct.layers[i].metric);
  }
}

TEST(RunnerEquivalence, TuneValidateSpecMatchesEmpiricalTuner) {
  // --validate restores the ground-truth empirical sweep.
  Spec spec = spec_from_file(spec_path("fig5_tune.json"));
  spec.plan.validate = true;
  const Outcome outcome = Runner().run(spec);
  ASSERT_EQ(outcome.tune().entries.size(), 1u);
  const core::TuneResult& facade = outcome.tune().entries[0].result;

  const Workload& w = spec.workloads.front();
  const auto model = build_model(w);
  core::TunerConfig cfg;
  cfg.max_rel_error = spec.accelerator.vhl_max_rel_error;
  cfg.hash_seed = spec.accelerator.hash_seed;
  const core::TuneResult direct = core::tune_hash_lengths(
      *model,
      sim::make_probe_batch(w.input_shape(), spec.accelerator.vhl_probes),
      cfg);

  ASSERT_EQ(facade.hash_bits, direct.hash_bits);
  ASSERT_EQ(facade.layers.size(), direct.layers.size());
  for (std::size_t i = 0; i < facade.layers.size(); ++i) {
    EXPECT_EQ(facade.layers[i].chosen_bits, direct.layers[i].chosen_bits);
    EXPECT_EQ(facade.layers[i].metric, direct.layers[i].metric);
  }
}

TEST(RunnerEquivalence, PlanSpecMatchesDirectPlanner) {
  // Plan mode through the facade (and its process-wide cache) must return
  // exactly the plan a direct Planner::plan call produces.
  const Spec spec = spec_from_file(spec_path("plan_lenet.json"));
  const Outcome outcome = Runner().run(spec);
  ASSERT_EQ(outcome.plan().entries.size(), 1u);
  const plan::Plan& facade = outcome.plan().entries[0].plan;

  const Workload& w = spec.workloads.front();
  const auto model = build_model(w);
  plan::PlannerConfig cfg;
  cfg.objective = plan::objective_from_name(spec.plan.objective);
  cfg.batch = spec.plan.batch;
  cfg.max_rel_error = spec.accelerator.vhl_max_rel_error;
  cfg.probes = spec.plan.probes;
  cfg.base = spec.accelerator.config();
  const plan::Plan direct =
      plan::Planner(*model, w.input_shape()).plan(cfg);

  EXPECT_EQ(plan::plan_to_json(facade), plan::plan_to_json(direct));
}

TEST(RunnerEquivalence, ServeSpecLogitsMatchDirectServer) {
  // Latencies are wall-clock and cannot be pinned; the serving determinism
  // contract (per-event input seeds) makes everything else — admissions
  // with an oversized queue, completions, per-request logits — bitwise
  // reproducible between the facade and a hand-assembled server.
  Spec spec = SpecBuilder("equiv-serve")
                  .mode(Mode::kServe)
                  .workload("lenet5", 7)
                  .engine_threads(2)
                  .serve_tiers({256})
                  .serve_workers(2)
                  .serve_queue(256)
                  .serve_batch(8, 2000)
                  .serve_trace("poisson", 32, 500.0, 3)
                  .build();
  const Outcome outcome = Runner().run(spec);
  const ServeOutcome& facade = outcome.serve();
  EXPECT_EQ(facade.trace_events, 32u);
  EXPECT_EQ(facade.load.sent + facade.load.rejected, 32u);
  ASSERT_EQ(facade.sessions, std::vector<std::string>{"lenet5-k256"});

  // Direct path: same sessions, same trace, hand-assembled.
  serve::ServerConfig cfg;
  cfg.num_workers = 2;
  cfg.queue_capacity = 256;
  cfg.batch.max_batch_size = 8;
  cfg.batch.max_queue_delay = std::chrono::microseconds(2000);
  serve::Server server(cfg);
  const auto model = nn::make_lenet5(7);
  core::DeepCamConfig dc = spec.accelerator.config();
  dc.default_hash_bits = 256;
  auto compiled = std::make_shared<const core::CompiledModel>(*model, dc);
  server.sessions().add_session("lenet5-k256", std::move(compiled), 2);
  server.start();

  serve::TraceConfig tc;
  tc.requests = 32;
  tc.rate_rps = 500.0;
  tc.sessions = {"lenet5-k256"};
  tc.seed = 3;
  const serve::Trace trace = serve::make_trace(tc);
  serve::LoadGenerator loadgen(server, {nn::input_spec_for("lenet5").shape()});
  const serve::LoadReport direct = loadgen.replay(trace);
  server.drain();
  server.stop();

  ASSERT_EQ(facade.load.records.size(), direct.records.size());
  for (std::size_t i = 0; i < direct.records.size(); ++i) {
    const serve::RequestRecord& a = facade.load.records[i];
    const serve::RequestRecord& b = direct.records[i];
    ASSERT_TRUE(a.completed && b.completed) << "event " << i;
    const nn::Tensor& la = a.response.logits;
    const nn::Tensor& lb = b.response.logits;
    ASSERT_EQ(la.numel(), lb.numel());
    for (std::size_t j = 0; j < la.numel(); ++j)
      ASSERT_EQ(la[j], lb[j]) << "event " << i << " logit " << j;
  }
}

// --- outcome plumbing -----------------------------------------------------

TEST(Outcome, CheckedAccessors) {
  Outcome outcome{"x", Mode::kOffline, OfflineOutcome{}};
  EXPECT_NO_THROW(outcome.offline());
  EXPECT_THROW(outcome.compare(), Error);
  EXPECT_THROW(outcome.serve(), Error);
  EXPECT_THROW(outcome.tune(), Error);
}

TEST(Outcome, JsonEnvelopeNamesSpecAndMode) {
  const Spec spec = spec_from_file(spec_path("quickstart.json"));
  const Outcome outcome = Runner().run(spec);
  const std::string json = outcome_to_json(outcome);
  EXPECT_EQ(json.rfind("{\"spec\":\"quickstart\",\"mode\":\"offline\","
                       "\"offline\":",
                       0),
            0u)
      << json.substr(0, 80);
  // The document parses back and per_sample only appears when asked.
  EXPECT_EQ(parse_json(json).at("offline").find("per_sample"), nullptr);
  const std::string with_samples = outcome_to_json(outcome, true);
  EXPECT_NE(parse_json(with_samples).at("offline").find("per_sample"),
            nullptr);
  EXPECT_FALSE(outcome_text(outcome).empty());
  EXPECT_NE(outcome_csv(outcome).find("layer,patches"), std::string::npos);
}

}  // namespace
}  // namespace deepcam
