#include "cpu/cpu_model.hpp"

#include <gtest/gtest.h>

#include "common/tech.hpp"
#include "nn/topologies.hpp"

namespace deepcam::cpu {
namespace {

TEST(CpuModel, EfficiencyNeverExceedsCap) {
  for (const auto& dims :
       {nn::GemmDims{"a", 1, 1, 1}, nn::GemmDims{"b", 4096, 512, 4608},
        nn::GemmDims{"c", 576, 6, 25}}) {
    const CpuLayerResult r = simulate_layer(dims);
    EXPECT_LE(r.efficiency, tech::kCpuMaxEfficiency + 1e-9);
    EXPECT_GT(r.cycles, 0.0);
  }
}

TEST(CpuModel, LargeGemmApproachesCap) {
  const CpuLayerResult r = simulate_layer({"big", 4096, 512, 4608});
  EXPECT_GT(r.efficiency, 0.8 * tech::kCpuMaxEfficiency);
}

TEST(CpuModel, TinyLayersAreInefficient) {
  // The effect behind the paper's huge CPU speedup numbers: small CNN
  // layers run far below peak on real CPUs.
  const CpuLayerResult r = simulate_layer({"fc", 1, 10, 84});
  EXPECT_LT(r.efficiency, 0.01);
}

TEST(CpuModel, ShortReductionsWasteLanes) {
  // K=25 pads to 64 lanes: > 2.5x padding waste versus K=64.
  const CpuLayerResult short_k = simulate_layer({"s", 1000, 64, 25});
  const CpuLayerResult full_k = simulate_layer({"f", 1000, 64, 64});
  EXPECT_GT(full_k.efficiency, 1.5 * short_k.efficiency);
}

TEST(CpuModel, CyclesMonotoneInWork) {
  const double c1 = simulate_layer({"a", 100, 10, 100}).cycles;
  const double c2 = simulate_layer({"b", 200, 10, 100}).cycles;
  const double c3 = simulate_layer({"c", 200, 20, 100}).cycles;
  EXPECT_LT(c1, c2);
  EXPECT_LT(c2, c3);
}

TEST(CpuModel, ModelAggregation) {
  auto m = nn::make_lenet5(1);
  const CpuModelResult r = simulate_cpu(*m, {1, 1, 28, 28});
  EXPECT_EQ(r.layers.size(), 5u);
  EXPECT_EQ(r.total_macs(), nn::total_macs(*m, {1, 1, 28, 28}));
  double sum = 0.0;
  for (const auto& l : r.layers) sum += l.cycles;
  EXPECT_DOUBLE_EQ(r.total_cycles(), sum);
  EXPECT_GT(r.mean_efficiency(), 0.0);
  EXPECT_LE(r.mean_efficiency(), tech::kCpuMaxEfficiency);
}

TEST(CpuModel, LeNetIsLatencyBound) {
  // LeNet on a Skylake-class core: overheads dominate; overall efficiency
  // is a few percent of peak — matching observed small-CNN behaviour.
  auto m = nn::make_lenet5(2);
  const CpuModelResult r = simulate_cpu(*m, {1, 1, 28, 28});
  EXPECT_LT(r.mean_efficiency(), 0.10);
}

TEST(CpuModel, BigModelsMoreEfficientThanLeNet) {
  auto lenet = nn::make_lenet5(3);
  auto vgg = nn::make_vgg16(4, 100);
  const double e_lenet = simulate_cpu(*lenet, {1, 1, 28, 28}).mean_efficiency();
  const double e_vgg = simulate_cpu(*vgg, {1, 3, 32, 32}).mean_efficiency();
  EXPECT_GT(e_vgg, e_lenet);
}

}  // namespace
}  // namespace deepcam::cpu
