#include "nn/workload.hpp"

#include <gtest/gtest.h>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "nn/topologies.hpp"

namespace deepcam::nn {
namespace {

TEST(InferShapes, MatchesActualForward) {
  auto m = make_lenet5(1);
  const Shape in{1, 1, 28, 28};
  const auto shapes = infer_shapes(*m, in);
  Tensor x(in);
  const auto outs = m->forward_all(x);
  ASSERT_EQ(shapes.size(), outs.size());
  for (std::size_t i = 0; i < shapes.size(); ++i)
    EXPECT_TRUE(shapes[i] == outs[i].shape()) << "node " << i;
}

TEST(InferShapes, ResNetGraphMatchesForward) {
  auto m = make_resnet18(2, 100);
  const Shape in{1, 3, 32, 32};
  const auto shapes = infer_shapes(*m, in);
  Tensor x(in);
  const auto outs = m->forward_all(x);
  ASSERT_EQ(shapes.size(), outs.size());
  for (std::size_t i = 0; i < shapes.size(); ++i)
    EXPECT_TRUE(shapes[i] == outs[i].shape()) << "node " << i;
}

TEST(Workload, LeNetGemmDims) {
  auto m = make_lenet5(3);
  const auto work = extract_gemm_workload(*m, {1, 1, 28, 28});
  ASSERT_EQ(work.size(), 5u);  // 2 convs + 3 FCs
  // conv1: 24x24 patches, 6 filters, 25-length contexts.
  EXPECT_EQ(work[0].m, 576u);
  EXPECT_EQ(work[0].n, 6u);
  EXPECT_EQ(work[0].k, 25u);
  // conv2: 8x8 patches, 16 filters, 150-length contexts.
  EXPECT_EQ(work[1].m, 64u);
  EXPECT_EQ(work[1].n, 16u);
  EXPECT_EQ(work[1].k, 150u);
  // fc1: M=1.
  EXPECT_EQ(work[2].m, 1u);
  EXPECT_EQ(work[2].n, 120u);
  EXPECT_EQ(work[2].k, 256u);
}

TEST(Workload, MacsAreMNK) {
  GemmDims g{"x", 3, 5, 7};
  EXPECT_EQ(g.macs(), 105u);
}

TEST(Workload, TotalMacsLeNet) {
  auto m = make_lenet5(4);
  const std::size_t macs = total_macs(*m, {1, 1, 28, 28});
  // 576*6*25 + 64*16*150 + 30720 + 10080 + 840 = 281,640.
  EXPECT_EQ(macs, 576u * 6 * 25 + 64u * 16 * 150 + 256u * 120 + 120u * 84 +
                      84u * 10);
}

TEST(Workload, ChannelMismatchDetected) {
  Model m("bad");
  m.add(std::make_unique<Conv2D>("c", ConvSpec{4, 8, 3, 3, 1, 1}, 1));
  EXPECT_THROW(infer_shapes(m, {1, 3, 8, 8}), Error);
}

TEST(Workload, StrideAndPadPropagate) {
  Model m("s");
  m.add(std::make_unique<Conv2D>("c", ConvSpec{1, 2, 3, 3, 2, 1}, 1));
  const auto shapes = infer_shapes(m, {1, 1, 9, 9});
  // (9 + 2 - 3)/2 + 1 = 5.
  EXPECT_TRUE((shapes[0] == Shape{1, 2, 5, 5}));
}

}  // namespace
}  // namespace deepcam::nn
