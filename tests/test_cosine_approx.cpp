#include "hash/cosine_approx.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace deepcam::hash {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(PwlCosine, PaperBreakpoints) {
  // Segment 1: cos(0) = 1 exactly.
  EXPECT_DOUBLE_EQ(pwl_cosine(0.0), 1.0);
  // Segment 1 at pi/3: 1 - 1/3 = 2/3 (paper's linear form).
  EXPECT_NEAR(pwl_cosine(kPi / 3.0), 2.0 / 3.0, 1e-12);
  // Segment 2 at pi/2: -0.96*(pi/2)+1.51 ~ 0.002 — near zero by design.
  EXPECT_NEAR(pwl_cosine(kPi / 2.0), -0.96 * kPi / 2.0 + 1.51, 1e-12);
  EXPECT_NEAR(pwl_cosine(kPi / 2.0), 0.0, 0.01);
  // Reflection: cos(pi) = -cos(0) = -1.
  EXPECT_DOUBLE_EQ(pwl_cosine(kPi), -1.0);
}

TEST(PwlCosine, OddSymmetryAroundPiOverTwo) {
  for (double t = 0.0; t <= kPi / 2.0; t += 0.01)
    EXPECT_NEAR(pwl_cosine(kPi - t), -pwl_cosine(t), 1e-12) << t;
}

TEST(PwlCosine, ErrorBoundedOverDomain) {
  double max_err = 0.0;
  for (double t = 0.0; t <= kPi; t += 1e-4)
    max_err = std::max(max_err, std::abs(pwl_cosine(t) - std::cos(t)));
  EXPECT_LE(max_err, kPwlCosineMaxAbsError);
  // And the bound is not vacuous: error does exceed 0.1 somewhere.
  EXPECT_GE(max_err, 0.1);
}

TEST(PwlCosine, ClampsOutsideDomain) {
  EXPECT_DOUBLE_EQ(pwl_cosine(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(pwl_cosine(4.0), -1.0);
}

TEST(PwlCosine, MonotoneDecreasing) {
  double prev = pwl_cosine(0.0);
  for (double t = 0.005; t <= kPi; t += 0.005) {
    const double c = pwl_cosine(t);
    EXPECT_LE(c, prev + 1e-12) << t;
    prev = c;
  }
}

TEST(AngleFromHamming, Endpoints) {
  EXPECT_DOUBLE_EQ(angle_from_hamming(0, 256), 0.0);
  EXPECT_DOUBLE_EQ(angle_from_hamming(256, 256), kPi);
  EXPECT_DOUBLE_EQ(angle_from_hamming(128, 256), kPi / 2.0);
}

TEST(AngleFromHamming, ZeroHashLengthSafe) {
  EXPECT_DOUBLE_EQ(angle_from_hamming(3, 0), 0.0);
}

TEST(ApproxDot, IdenticalVectorsGiveNormProduct) {
  // HD = 0 -> theta = 0 -> cos = 1 -> dot = |x||y|.
  EXPECT_DOUBLE_EQ(approx_dot(2.0, 3.0, 0, 512), 6.0);
}

TEST(ApproxDot, OppositeVectorsGiveNegativeProduct) {
  EXPECT_DOUBLE_EQ(approx_dot(2.0, 3.0, 512, 512), -6.0);
}

TEST(ApproxDot, PwlVersusExactCosineOption) {
  const double pwl = approx_dot(1.0, 1.0, 100, 512, /*use_pwl=*/true);
  const double exact = approx_dot(1.0, 1.0, 100, 512, /*use_pwl=*/false);
  const double theta = angle_from_hamming(100, 512);
  EXPECT_DOUBLE_EQ(exact, std::cos(theta));
  EXPECT_NEAR(pwl, exact, kPwlCosineMaxAbsError);
}

// Property sweep: for every hash length, the approx dot of unit vectors is
// within the PWL error bound of the true cosine of the estimated angle.
class ApproxDotSweep : public ::testing::TestWithParam<int> {};

TEST_P(ApproxDotSweep, BoundedDeviationFromCosine) {
  const std::size_t k = static_cast<std::size_t>(GetParam());
  for (std::size_t hd = 0; hd <= k; hd += k / 16) {
    const double theta = angle_from_hamming(hd, k);
    EXPECT_NEAR(approx_dot(1.0, 1.0, hd, k), std::cos(theta),
                kPwlCosineMaxAbsError)
        << "k=" << k << " hd=" << hd;
  }
}

INSTANTIATE_TEST_SUITE_P(HashLengths, ApproxDotSweep,
                         ::testing::Values(256, 512, 768, 1024));

}  // namespace
}  // namespace deepcam::hash
