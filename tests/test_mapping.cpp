#include "core/mapping.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"

namespace deepcam::core {
namespace {

TEST(Mapping, PaperExampleSection4B) {
  // "a single-channeled input of size 32x32 and 6 weight-kernels of size
  //  5x5 with stride 1": 28*28 = 784 patches, 6 kernels, 64 CAM rows.
  const LayerWork work{784, 6};

  const MappingPlan ws = plan_mapping(work, 64, Dataflow::kWeightStationary);
  EXPECT_EQ(ws.passes, 1u);
  EXPECT_EQ(ws.searches, 784u);
  // Paper: utilization 6/64 = 9.4%.
  EXPECT_NEAR(ws.utilization, 6.0 / 64.0, 1e-9);

  const MappingPlan as =
      plan_mapping(work, 64, Dataflow::kActivationStationary);
  EXPECT_EQ(as.passes, 13u);  // ceil(784/64)
  EXPECT_EQ(as.searches, 13u * 6u);
  // Paper: "utilization becomes 100%" — 12 full passes, one partial (16/64):
  // mean is ~94.7%, i.e. near-full; far above the 9.4% of WS.
  EXPECT_GT(as.utilization, 0.9);
  EXPECT_GT(as.utilization / ws.utilization, 9.0);
  // And AS needs far fewer searches.
  EXPECT_LT(as.searches * 10, ws.searches);
}

TEST(Mapping, DotProductInvariant) {
  // Every mapping must produce exactly P*K dot products.
  for (std::size_t p : {1u, 13u, 784u})
    for (std::size_t k : {1u, 6u, 512u})
      for (std::size_t r : {1u, 64u, 512u})
        for (auto df : {Dataflow::kWeightStationary,
                        Dataflow::kActivationStationary}) {
          const MappingPlan plan = plan_mapping({p, k}, r, df);
          EXPECT_EQ(plan.dot_products, p * k);
          // searches * rows >= dot products (capacity covers the work).
          EXPECT_GE(plan.searches * r, p * k);
        }
}

TEST(Mapping, RowsWrittenEqualsStationaryCount) {
  EXPECT_EQ(plan_mapping({100, 7}, 64, Dataflow::kWeightStationary)
                .rows_written,
            7u);
  EXPECT_EQ(plan_mapping({100, 7}, 64, Dataflow::kActivationStationary)
                .rows_written,
            100u);
}

TEST(Mapping, ExactFitGivesFullUtilization) {
  const MappingPlan plan =
      plan_mapping({128, 5}, 64, Dataflow::kActivationStationary);
  EXPECT_EQ(plan.passes, 2u);
  EXPECT_DOUBLE_EQ(plan.utilization, 1.0);
  EXPECT_EQ(plan.searches, 10u);
}

TEST(Mapping, SingleRowCam) {
  const MappingPlan plan =
      plan_mapping({10, 3}, 1, Dataflow::kWeightStationary);
  EXPECT_EQ(plan.passes, 3u);
  EXPECT_EQ(plan.searches, 30u);
  EXPECT_DOUBLE_EQ(plan.utilization, 1.0);
}

TEST(Mapping, FcLayersFavorWeightStationary) {
  // P=1 (one activation vector): AS wastes the array, WS fills it.
  const LayerWork fc{1, 512};
  const MappingPlan ws = plan_mapping(fc, 64, Dataflow::kWeightStationary);
  const MappingPlan as =
      plan_mapping(fc, 64, Dataflow::kActivationStationary);
  EXPECT_DOUBLE_EQ(ws.utilization, 1.0);
  EXPECT_NEAR(as.utilization, 1.0 / 64.0, 1e-9);
  EXPECT_LT(ws.searches, as.searches);
}

TEST(Mapping, MoreRowsNeverIncreasesSearches) {
  // Monotonicity property behind the paper's rows sweep (Fig. 9: 64 -> 512
  // rows improves ResNet18 cycles 3.3x -> 26.4x).
  for (auto df :
       {Dataflow::kWeightStationary, Dataflow::kActivationStationary}) {
    std::size_t prev = SIZE_MAX;
    for (std::size_t rows : {64u, 128u, 256u, 512u}) {
      const MappingPlan plan = plan_mapping({784, 96}, rows, df);
      EXPECT_LE(plan.searches, prev);
      prev = plan.searches;
    }
  }
}

TEST(Mapping, InvalidInputsThrow) {
  EXPECT_THROW(plan_mapping({0, 5}, 64, Dataflow::kWeightStationary),
               deepcam::Error);
  EXPECT_THROW(plan_mapping({5, 0}, 64, Dataflow::kWeightStationary),
               deepcam::Error);
  EXPECT_THROW(plan_mapping({5, 5}, 0, Dataflow::kWeightStationary),
               deepcam::Error);
}

TEST(Mapping, DataflowNames) {
  EXPECT_STREQ(dataflow_name(Dataflow::kWeightStationary),
               "weight-stationary");
  EXPECT_STREQ(dataflow_name(Dataflow::kActivationStationary),
               "activation-stationary");
}

// Brute-force cross-check of the closed forms on a parameter grid.
class MappingBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MappingBruteForce, MatchesEnumeration) {
  const auto [p, k, r] = GetParam();
  const LayerWork work{static_cast<std::size_t>(p),
                       static_cast<std::size_t>(k)};
  for (auto df :
       {Dataflow::kWeightStationary, Dataflow::kActivationStationary}) {
    const MappingPlan plan = plan_mapping(work, static_cast<std::size_t>(r),
                                          df);
    // Enumerate passes.
    const std::size_t stationary =
        df == Dataflow::kWeightStationary ? work.kernels : work.patches;
    const std::size_t streamed =
        df == Dataflow::kWeightStationary ? work.patches : work.kernels;
    std::size_t passes = 0, searches = 0, written = 0;
    for (std::size_t base = 0; base < stationary;
         base += static_cast<std::size_t>(r)) {
      ++passes;
      written += std::min<std::size_t>(r, stationary - base);
      searches += streamed;
    }
    EXPECT_EQ(plan.passes, passes);
    EXPECT_EQ(plan.searches, searches);
    EXPECT_EQ(plan.rows_written, written);
    EXPECT_EQ(written, stationary);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MappingBruteForce,
    ::testing::Combine(::testing::Values(1, 16, 65, 784),
                       ::testing::Values(1, 6, 64, 100),
                       ::testing::Values(1, 64, 128, 512)));

}  // namespace
}  // namespace deepcam::core
