#include "cam/energy_model.hpp"

#include <gtest/gtest.h>

#include "common/tech.hpp"

namespace deepcam::cam {
namespace {

TEST(CamCostModel, FefetCheaperThanCmos) {
  EXPECT_LT(CamCostModel::search_energy_per_bit(CellTech::kFeFET),
            CamCostModel::search_energy_per_bit(CellTech::kCmos));
  const double ratio = CamCostModel::search_energy_per_bit(CellTech::kCmos) /
                       CamCostModel::search_energy_per_bit(CellTech::kFeFET);
  // [paper] FeFET search is ~2.4x cheaper.
  EXPECT_NEAR(ratio, tech::kCmosSearchEnergyFactor, 1e-9);
}

TEST(CamCostModel, SearchEnergyMonotoneInRowsAndBits) {
  // Fig. 8 property: overhead grows along both sweep axes.
  double prev_rows = 0.0;
  for (std::size_t rows : {64u, 128u, 256u, 512u}) {
    const double e =
        CamCostModel::search_energy(CamConfig{rows, 256, 4}, 1024);
    EXPECT_GT(e, prev_rows);
    prev_rows = e;
  }
  double prev_bits = 0.0;
  for (std::size_t bits : {256u, 512u, 768u, 1024u}) {
    const double e = CamCostModel::search_energy(CamConfig{64, 256, 4}, bits);
    EXPECT_GT(e, prev_bits);
    prev_bits = e;
  }
}

TEST(CamCostModel, SearchEnergyRoughlyLinearInCells) {
  const CamConfig small{64, 256, 4};
  const CamConfig big{512, 256, 4};
  const double e_small = CamCostModel::search_energy(small, 256);
  const double e_big = CamCostModel::search_energy(big, 256);
  EXPECT_NEAR(e_big / e_small, 8.0, 0.5);  // 8x rows
}

TEST(CamCostModel, AreaMonotoneAndFefetDenser) {
  const CamConfig fefet{256, 256, 4, CellTech::kFeFET};
  CamConfig cmos = fefet;
  cmos.tech = CellTech::kCmos;
  EXPECT_GT(CamCostModel::area_um2(cmos), CamCostModel::area_um2(fefet));
  // [paper] FeFET cell ~7.5x smaller; arrays are dominated by cells so the
  // full-array ratio approaches that.
  const double ratio =
      CamCostModel::area_um2(cmos) / CamCostModel::area_um2(fefet);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 7.6);
}

TEST(CamCostModel, WriteEnergyPerBit) {
  const CamConfig cfg{64, 256, 4};
  EXPECT_NEAR(CamCostModel::write_energy(cfg, 512),
              512.0 * tech::kCamWriteEnergyPerBit, 1e-20);
}

TEST(CamCostModel, MagnitudesPlausible) {
  // One search of a 64x1024 FeFET array should cost ~10 pJ (EvaCAM-scale),
  // definitely between 1 pJ and 100 pJ.
  const double e = CamCostModel::search_energy(CamConfig{64, 256, 4}, 1024);
  EXPECT_GT(e, 1e-12);
  EXPECT_LT(e, 1e-10);
}

}  // namespace
}  // namespace deepcam::cam
