// Failure-injection tests: FeFET bit faults in the CAM array and sense-amp
// time-quantization error, measured at the dot-product and network level —
// plus the serving path: a poisoned micro-batch fails only its own riders,
// the server keeps serving, and the failure is visible in the metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "cam/dynamic_cam.hpp"
#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/topologies.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace deepcam {
namespace {

TEST(FaultInjection, SingleBitFaultBoundedAngleError) {
  // One stored-bit flip changes HD by exactly 1 -> angle error pi/k.
  cam::DynamicCam cam(cam::CamConfig{4, 256, 4});
  Rng rng(1);
  BitVec data(1024), key(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    data.set(i, rng.uniform() < 0.5);
    key.set(i, rng.uniform() < 0.5);
  }
  cam.write_row(0, data);
  const auto before = *cam.search(key).row_hd[0];
  cam.inject_bit_fault(0, 500);
  const auto after = *cam.search(key).row_hd[0];
  const double dtheta = std::abs(double(after) - double(before)) *
                        3.14159265358979 / 1024.0;
  EXPECT_LE(dtheta, 3.15 / 1024.0);
}

TEST(FaultInjection, ManyFaultsDegradeGracefully) {
  // Random faults move the measured HD toward k/2; the shift is roughly
  // proportional to the fault count (error tolerance the paper leans on).
  cam::DynamicCam cam(cam::CamConfig{4, 256, 4});
  Rng rng(2);
  BitVec data(1024), key(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    data.set(i, rng.uniform() < 0.5);
    key.set(i, rng.uniform() < 0.5);
  }
  cam.write_row(0, data);
  const double before = double(*cam.search(key).row_hd[0]);
  for (int f = 0; f < 32; ++f)
    cam.inject_bit_fault(0, rng.uniform_index(1024));
  const double after = double(*cam.search(key).row_hd[0]);
  EXPECT_LE(std::abs(after - before), 32.0);
}

TEST(FaultInjection, ClearFaultsRestoresContentsBitExactly) {
  // Chaos runs inject and heal CAM damage repeatedly on a live array:
  // clear_faults() must restore the stored contents bit for bit, without
  // rewriting any row, and the fault mask must track what is outstanding.
  cam::DynamicCam cam(cam::CamConfig{4, 256, 4});
  Rng rng(3);
  BitVec data(1024), key(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    data.set(i, rng.uniform() < 0.5);
    key.set(i, rng.uniform() < 0.5);
  }
  cam.write_row(0, data);
  cam.write_row(1, key);
  const auto pristine0 = *cam.search(key).row_hd[0];
  const auto pristine1 = *cam.search(key).row_hd[1];

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    cam.inject_bit_fault(0, 10 + static_cast<std::size_t>(round));
    cam.inject_bit_fault(0, 700);
    cam.inject_bit_fault(1, 3);
    EXPECT_EQ(cam.faults().size(), 3u);
    // Row 1 carries a single flip, so its HD must move by exactly 1 (two
    // flips in one row can cancel in HD terms, so row 0 is not asserted).
    EXPECT_NE(*cam.search(key).row_hd[1], pristine1);
    cam.clear_faults();
    EXPECT_TRUE(cam.faults().empty());
    EXPECT_EQ(*cam.search(key).row_hd[0], pristine0);
    EXPECT_EQ(*cam.search(key).row_hd[1], pristine1);
  }

  // Double injection of the same cell is a no-op on contents and mask.
  cam.inject_bit_fault(0, 42);
  cam.inject_bit_fault(0, 42);
  EXPECT_TRUE(cam.faults().empty());
  EXPECT_EQ(*cam.search(key).row_hd[0], pristine0);

  // A rewrite reprograms the row: its recorded faults are dropped, and a
  // later clear_faults() must not corrupt the fresh contents.
  cam.inject_bit_fault(0, 100);
  cam.inject_bit_fault(1, 200);
  cam.write_row(0, data);
  ASSERT_EQ(cam.faults().size(), 1u);
  EXPECT_EQ(cam.faults()[0].row, 1u);
  cam.clear_faults();
  EXPECT_EQ(*cam.search(key).row_hd[0], pristine0);
  EXPECT_EQ(*cam.search(key).row_hd[1], pristine1);

  // clear() wipes occupancy and the mask together.
  cam.inject_bit_fault(0, 7);
  cam.clear();
  EXPECT_TRUE(cam.faults().empty());
}

TEST(FaultInjection, QuantizedSenseAmpDegradesButTracksResolution) {
  // End-to-end: TDC-quantized sensing is *lossy* for mid-range Hamming
  // distances (the hyperbolic discharge-time curve compresses HD ~ k/2 into
  // very few time bins) — an honest physical limitation of the paper's
  // clocked sense amplifier that EXPERIMENTS.md discusses. The contract we
  // verify: quantized outputs remain finite and positively correlated with
  // the ideal-SA outputs, and correlation improves with TDC resolution.
  auto make_net = [] {
    auto m = std::make_unique<nn::Model>("tiny");
    m->add(std::make_unique<nn::Conv2D>("c", nn::ConvSpec{1, 4, 3, 3, 1, 0},
                                        3));
    m->add(std::make_unique<nn::ReLU>("r"));
    m->add(std::make_unique<nn::Flatten>("f"));
    m->add(std::make_unique<nn::Linear>("fc", 4 * 36, 5, 4));
    return m;
  };
  auto m = make_net();
  nn::Tensor in({1, 1, 8, 8});
  Rng rng(5);
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(rng.gaussian());

  core::DeepCamConfig ideal;
  ideal.sense.mode = cam::SenseMode::kIdeal;
  core::DeepCamAccelerator acc_ideal(*m, ideal);
  const nn::Tensor o_ideal = acc_ideal.run(in);

  auto correlation_at = [&](std::size_t tau) {
    core::DeepCamConfig quant;
    quant.sense.mode = cam::SenseMode::kQuantized;
    quant.sense.tau_unit_bins = tau;
    quant.sense.bins_per_cycle = 8;
    core::DeepCamAccelerator acc(*m, quant);
    const nn::Tensor o = acc.run(in);
    double num = 0.0, d1 = 0.0, d2 = 0.0;
    for (std::size_t i = 0; i < o_ideal.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(o[i]));
      num += double(o_ideal[i]) * o[i];
      d1 += double(o_ideal[i]) * o_ideal[i];
      d2 += double(o[i]) * o[i];
    }
    return num / (std::sqrt(d1 * d2) + 1e-30);
  };
  const double c_coarse = correlation_at(256);
  const double c_fine = correlation_at(16384);
  EXPECT_GT(c_coarse, 0.0);       // still positively correlated
  EXPECT_GE(c_fine, c_coarse);    // resolution helps
  EXPECT_GT(c_fine, 0.5);         // fine TDC recovers most fidelity
}

TEST(FaultInjection, CoarseTdcHurtsMoreThanFineTdc) {
  auto m = nn::make_lenet5(6);
  nn::Tensor in({1, 1, 28, 28});
  Rng rng(7);
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(rng.gaussian());
  const nn::Tensor ref = m->forward(in, false);

  auto mse_with_tau = [&](std::size_t tau) {
    core::DeepCamConfig cfg;
    cfg.sense.mode = cam::SenseMode::kQuantized;
    cfg.sense.tau_unit_bins = tau;
    core::DeepCamAccelerator acc(*m, cfg);
    const nn::Tensor out = acc.run(in);
    double s = 0.0;
    for (std::size_t i = 0; i < ref.numel(); ++i) {
      const double d = out[i] - ref[i];
      s += d * d;
    }
    return s;
  };
  // Fine TDC (4096 bins) should track the reference at least as well as a
  // very coarse one (32 bins).
  EXPECT_LE(mse_with_tau(4096), mse_with_tau(32) * 1.05);
}

TEST(FaultInjection, ChunkMisconfigurationDetected) {
  // Driving a hash length beyond the physical chunks must throw, not
  // silently truncate.
  cam::DynamicCam cam(cam::CamConfig{8, 256, 2});  // only 2 chunks built
  EXPECT_THROW(cam.set_hash_length(768), Error);
  cam.set_hash_length(512);
  EXPECT_EQ(cam.active_bits(), 512u);
}

TEST(FaultInjection, AccuracyRobustToSparseFaults) {
  // Network-level robustness: the approximate dot-product is itself noisy,
  // so sparse CAM faults shouldn't change most predictions. We verify on a
  // tiny net that <=2 bit faults leave the argmax unchanged for most
  // inputs.
  auto m = std::make_unique<nn::Model>("tiny");
  m->add(std::make_unique<nn::Conv2D>("c", nn::ConvSpec{1, 4, 3, 3, 1, 0},
                                      8));
  m->add(std::make_unique<nn::ReLU>("r"));
  m->add(std::make_unique<nn::Flatten>("f"));
  m->add(std::make_unique<nn::Linear>("fc", 4 * 36, 5, 9));

  core::DeepCamConfig cfg;
  core::DeepCamAccelerator acc(*m, cfg);
  Rng rng(10);
  int same = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    nn::Tensor in({1, 1, 8, 8});
    for (std::size_t i = 0; i < in.numel(); ++i)
      in[i] = static_cast<float>(rng.gaussian());
    const auto base = nn::argmax_class(acc.run(in));
    // A fresh accelerator whose hash seed differs slightly models a
    // perturbed (faulty) signature set.
    core::DeepCamConfig faulty = cfg;
    faulty.hash_seed = cfg.hash_seed + 1;  // different random projections
    core::DeepCamAccelerator acc2(*m, faulty);
    if (nn::argmax_class(acc2.run(in)) == base) ++same;
  }
  // Different projections (a much bigger perturbation than sparse faults)
  // still mostly agree — a fortiori sparse faults do.
  EXPECT_GE(same, trials / 2);
}

TEST(FaultInjection, PoisonedMicroBatchFailsOnlyItsRidersServerKeepsServing) {
  // Serving-path fault containment: a bad-shape input makes the engine
  // throw mid-batch. The error must be confined to that micro-batch's
  // riders (each answered exactly once, with the error), the worker must
  // survive, later requests must complete normally, and the failure must
  // be visible in ServerMetrics.
  auto model = std::make_unique<nn::Model>("tiny");
  model->add(std::make_unique<nn::Conv2D>(
      "c", nn::ConvSpec{1, 4, 3, 3, 1, 0}, 3));
  model->add(std::make_unique<nn::ReLU>("r"));
  model->add(std::make_unique<nn::Flatten>("f"));
  model->add(std::make_unique<nn::Linear>("fc", 4 * 36, 5, 4));
  core::DeepCamConfig cfg;
  cfg.cam_rows = 16;
  auto compiled = std::make_shared<const core::CompiledModel>(*model, cfg);

  serve::ServerConfig sc;
  sc.num_workers = 1;  // one worker: if the throw killed it, phase 2 hangs
  sc.queue_capacity = 32;
  sc.batch.max_batch_size = 4;
  sc.batch.max_queue_delay = std::chrono::microseconds(500);
  serve::Server server(sc);
  server.sessions().add_session("tiny", compiled, 1);
  server.start();

  const nn::Shape good_shape{1, 1, 8, 8};
  const nn::Shape bad_shape{1, 1, 5, 5};  // conv output mismatches fc

  // Phase 1: one poisoned request (bad geometry) plus neighbors that may
  // coalesce into the same micro-batch and share its error.
  std::atomic<std::size_t> phase1_errors{0}, phase1_done{0};
  std::size_t phase1_accepted = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const nn::Shape shape = i == 2 ? bad_shape : good_shape;
    if (server.submit("tiny",
                      serve::LoadGenerator::make_input(shape, i),
                      [&](serve::Response&& r) {
                        ++phase1_done;
                        if (!r.ok()) ++phase1_errors;
                      }) == serve::Admission::kAccepted)
      ++phase1_accepted;
  }
  server.drain();
  EXPECT_EQ(phase1_done.load(), phase1_accepted);  // all answered
  EXPECT_GE(phase1_errors.load(), 1u);             // the poisoned rider
  EXPECT_LE(phase1_errors.load(), 4u);             // <= one micro-batch

  // Phase 2: the server is still alive and serves clean requests.
  for (std::size_t i = 0; i < 6; ++i) {
    serve::Response r = server.run(
        "tiny", serve::LoadGenerator::make_input(good_shape, 100 + i));
    EXPECT_TRUE(r.ok()) << "server stopped serving after a poisoned batch";
  }
  server.stop();

  const serve::ServerSummary summary = server.summary();
  EXPECT_EQ(summary.sessions[0].errors, phase1_errors.load());
  EXPECT_EQ(summary.sessions[0].completed, phase1_accepted + 6);
  EXPECT_EQ(summary.total_expired(), 0u);
}

}  // namespace
}  // namespace deepcam
