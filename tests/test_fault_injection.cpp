// Failure-injection tests: FeFET bit faults in the CAM array and sense-amp
// time-quantization error, measured at the dot-product and network level.
#include <gtest/gtest.h>

#include <cmath>

#include "cam/dynamic_cam.hpp"
#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/topologies.hpp"

namespace deepcam {
namespace {

TEST(FaultInjection, SingleBitFaultBoundedAngleError) {
  // One stored-bit flip changes HD by exactly 1 -> angle error pi/k.
  cam::DynamicCam cam(cam::CamConfig{4, 256, 4});
  Rng rng(1);
  BitVec data(1024), key(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    data.set(i, rng.uniform() < 0.5);
    key.set(i, rng.uniform() < 0.5);
  }
  cam.write_row(0, data);
  const auto before = *cam.search(key).row_hd[0];
  cam.inject_bit_fault(0, 500);
  const auto after = *cam.search(key).row_hd[0];
  const double dtheta = std::abs(double(after) - double(before)) *
                        3.14159265358979 / 1024.0;
  EXPECT_LE(dtheta, 3.15 / 1024.0);
}

TEST(FaultInjection, ManyFaultsDegradeGracefully) {
  // Random faults move the measured HD toward k/2; the shift is roughly
  // proportional to the fault count (error tolerance the paper leans on).
  cam::DynamicCam cam(cam::CamConfig{4, 256, 4});
  Rng rng(2);
  BitVec data(1024), key(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    data.set(i, rng.uniform() < 0.5);
    key.set(i, rng.uniform() < 0.5);
  }
  cam.write_row(0, data);
  const double before = double(*cam.search(key).row_hd[0]);
  for (int f = 0; f < 32; ++f)
    cam.inject_bit_fault(0, rng.uniform_index(1024));
  const double after = double(*cam.search(key).row_hd[0]);
  EXPECT_LE(std::abs(after - before), 32.0);
}

TEST(FaultInjection, QuantizedSenseAmpDegradesButTracksResolution) {
  // End-to-end: TDC-quantized sensing is *lossy* for mid-range Hamming
  // distances (the hyperbolic discharge-time curve compresses HD ~ k/2 into
  // very few time bins) — an honest physical limitation of the paper's
  // clocked sense amplifier that EXPERIMENTS.md discusses. The contract we
  // verify: quantized outputs remain finite and positively correlated with
  // the ideal-SA outputs, and correlation improves with TDC resolution.
  auto make_net = [] {
    auto m = std::make_unique<nn::Model>("tiny");
    m->add(std::make_unique<nn::Conv2D>("c", nn::ConvSpec{1, 4, 3, 3, 1, 0},
                                        3));
    m->add(std::make_unique<nn::ReLU>("r"));
    m->add(std::make_unique<nn::Flatten>("f"));
    m->add(std::make_unique<nn::Linear>("fc", 4 * 36, 5, 4));
    return m;
  };
  auto m = make_net();
  nn::Tensor in({1, 1, 8, 8});
  Rng rng(5);
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(rng.gaussian());

  core::DeepCamConfig ideal;
  ideal.sense.mode = cam::SenseMode::kIdeal;
  core::DeepCamAccelerator acc_ideal(*m, ideal);
  const nn::Tensor o_ideal = acc_ideal.run(in);

  auto correlation_at = [&](std::size_t tau) {
    core::DeepCamConfig quant;
    quant.sense.mode = cam::SenseMode::kQuantized;
    quant.sense.tau_unit_bins = tau;
    quant.sense.bins_per_cycle = 8;
    core::DeepCamAccelerator acc(*m, quant);
    const nn::Tensor o = acc.run(in);
    double num = 0.0, d1 = 0.0, d2 = 0.0;
    for (std::size_t i = 0; i < o_ideal.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(o[i]));
      num += double(o_ideal[i]) * o[i];
      d1 += double(o_ideal[i]) * o_ideal[i];
      d2 += double(o[i]) * o[i];
    }
    return num / (std::sqrt(d1 * d2) + 1e-30);
  };
  const double c_coarse = correlation_at(256);
  const double c_fine = correlation_at(16384);
  EXPECT_GT(c_coarse, 0.0);       // still positively correlated
  EXPECT_GE(c_fine, c_coarse);    // resolution helps
  EXPECT_GT(c_fine, 0.5);         // fine TDC recovers most fidelity
}

TEST(FaultInjection, CoarseTdcHurtsMoreThanFineTdc) {
  auto m = nn::make_lenet5(6);
  nn::Tensor in({1, 1, 28, 28});
  Rng rng(7);
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(rng.gaussian());
  const nn::Tensor ref = m->forward(in, false);

  auto mse_with_tau = [&](std::size_t tau) {
    core::DeepCamConfig cfg;
    cfg.sense.mode = cam::SenseMode::kQuantized;
    cfg.sense.tau_unit_bins = tau;
    core::DeepCamAccelerator acc(*m, cfg);
    const nn::Tensor out = acc.run(in);
    double s = 0.0;
    for (std::size_t i = 0; i < ref.numel(); ++i) {
      const double d = out[i] - ref[i];
      s += d * d;
    }
    return s;
  };
  // Fine TDC (4096 bins) should track the reference at least as well as a
  // very coarse one (32 bins).
  EXPECT_LE(mse_with_tau(4096), mse_with_tau(32) * 1.05);
}

TEST(FaultInjection, ChunkMisconfigurationDetected) {
  // Driving a hash length beyond the physical chunks must throw, not
  // silently truncate.
  cam::DynamicCam cam(cam::CamConfig{8, 256, 2});  // only 2 chunks built
  EXPECT_THROW(cam.set_hash_length(768), Error);
  cam.set_hash_length(512);
  EXPECT_EQ(cam.active_bits(), 512u);
}

TEST(FaultInjection, AccuracyRobustToSparseFaults) {
  // Network-level robustness: the approximate dot-product is itself noisy,
  // so sparse CAM faults shouldn't change most predictions. We verify on a
  // tiny net that <=2 bit faults leave the argmax unchanged for most
  // inputs.
  auto m = std::make_unique<nn::Model>("tiny");
  m->add(std::make_unique<nn::Conv2D>("c", nn::ConvSpec{1, 4, 3, 3, 1, 0},
                                      8));
  m->add(std::make_unique<nn::ReLU>("r"));
  m->add(std::make_unique<nn::Flatten>("f"));
  m->add(std::make_unique<nn::Linear>("fc", 4 * 36, 5, 9));

  core::DeepCamConfig cfg;
  core::DeepCamAccelerator acc(*m, cfg);
  Rng rng(10);
  int same = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    nn::Tensor in({1, 1, 8, 8});
    for (std::size_t i = 0; i < in.numel(); ++i)
      in[i] = static_cast<float>(rng.gaussian());
    const auto base = nn::argmax_class(acc.run(in));
    // A fresh accelerator whose hash seed differs slightly models a
    // perturbed (faulty) signature set.
    core::DeepCamConfig faulty = cfg;
    faulty.hash_seed = cfg.hash_seed + 1;  // different random projections
    core::DeepCamAccelerator acc2(*m, faulty);
    if (nn::argmax_class(acc2.run(in)) == base) ++same;
  }
  // Different projections (a much bigger perturbation than sparse faults)
  // still mostly agree — a fortiori sparse faults do.
  EXPECT_GE(same, trials / 2);
}

}  // namespace
}  // namespace deepcam
