// Property tests for the blocked batch-GEMM SimHash kernel: sign_hash_batch
// and project_batch must be bitwise identical to the per-vector reference
// path (sign_hash / project) across awkward input dimensions, patch counts,
// partial-word hash lengths, and IEEE-754 edge-case inputs (zeros,
// negative zero, denormals).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "hash/random_projection.hpp"

namespace deepcam::hash {
namespace {

/// Deterministic input matrix salted with FP edge cases: exact zeros (the
/// kernel's skip path), negative zeros (sign of 0·C must not flip bits),
/// denormals, and large-magnitude values.
std::vector<float> edge_case_matrix(std::size_t count, std::size_t dim,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> xs(count * dim);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    switch (i % 7) {
      case 0: xs[i] = 0.0f; break;
      case 1: xs[i] = -0.0f; break;
      case 2: xs[i] = 1e-41f; break;   // denormal
      case 3: xs[i] = -1e-41f; break;  // negative denormal
      case 4: xs[i] = 3.0e8f; break;
      default: xs[i] = static_cast<float>(rng.gaussian()); break;
    }
  }
  return xs;
}

TEST(SignHashBatch, BitwiseIdenticalToPerVectorAcrossDimsAndCounts) {
  const std::size_t dims[] = {1, 63, 64, 65, 150, 1024};
  const std::size_t counts[] = {0, 1, 7, 33};
  for (std::size_t dim : dims) {
    RandomProjection proj(dim, kMaxHashBits, 1000 + dim);
    const std::size_t wps = proj.words_per_sig();
    std::vector<float> scratch;
    for (std::size_t count : counts) {
      const auto xs = edge_case_matrix(count, dim, 77 * dim + count);
      std::vector<std::uint64_t> sigs(count * wps, 0xDEADBEEFDEADBEEFULL);
      proj.sign_hash_batch(xs.data(), count, kMaxHashBits, sigs.data(),
                           scratch);
      for (std::size_t p = 0; p < count; ++p) {
        const BitVec ref = proj.sign_hash(
            std::span<const float>(&xs[p * dim], dim));
        for (std::size_t w = 0; w < wps; ++w)
          ASSERT_EQ(sigs[p * wps + w], ref.data()[w])
              << "dim=" << dim << " count=" << count << " p=" << p
              << " word=" << w;
      }
    }
  }
}

TEST(SignHashBatch, PrefixLengthsMatchPerVectorPrefixHash) {
  const std::size_t dim = 65;
  RandomProjection proj(dim, kMaxHashBits, 9);
  const std::size_t count = 7;
  const auto xs = edge_case_matrix(count, dim, 5);
  std::vector<float> scratch;
  for (std::size_t k : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{65}, std::size_t{256}, std::size_t{768}}) {
    const std::size_t wps = (k + 63) / 64;
    std::vector<std::uint64_t> sigs(count * wps);
    proj.sign_hash_batch(xs.data(), count, k, sigs.data(), scratch);
    for (std::size_t p = 0; p < count; ++p) {
      const BitVec ref = proj.sign_hash_prefix(
          std::span<const float>(&xs[p * dim], dim), k);
      for (std::size_t w = 0; w < wps; ++w)
        ASSERT_EQ(sigs[p * wps + w], ref.data()[w])
            << "k=" << k << " p=" << p << " word=" << w;
    }
  }
}

TEST(ProjectBatch, BitwiseIdenticalToPerVectorProject) {
  const std::size_t dims[] = {1, 64, 150};
  for (std::size_t dim : dims) {
    RandomProjection proj(dim, 300, 31 + dim);  // non-multiple-of-64 width
    const std::size_t count = 11;
    const auto xs = edge_case_matrix(count, dim, dim);
    std::vector<float> batch_out(count * 300);
    proj.project_batch(xs.data(), count, batch_out.data());
    std::vector<float> ref(300);
    for (std::size_t p = 0; p < count; ++p) {
      proj.project(std::span<const float>(&xs[p * dim], dim), ref);
      for (std::size_t j = 0; j < 300; ++j) {
        // Bit-level equality (covers ±0 distinctions a plain == would hide).
        ASSERT_EQ(std::bit_cast<std::uint32_t>(batch_out[p * 300 + j]),
                  std::bit_cast<std::uint32_t>(ref[j]))
            << "dim=" << dim << " p=" << p << " j=" << j;
      }
    }
  }
}

TEST(SignHashBatch, ScratchReuseAcrossShapesIsClean) {
  // One scratch buffer shared across projections of different widths and
  // batch sizes must not leak state between calls.
  std::vector<float> scratch;
  RandomProjection big(150, kMaxHashBits, 3);
  RandomProjection small(5, kMaxHashBits, 4);
  const auto xs_big = edge_case_matrix(33, 150, 1);
  const auto xs_small = edge_case_matrix(2, 5, 2);
  std::vector<std::uint64_t> sig_big(33 * big.words_per_sig());
  std::vector<std::uint64_t> sig_small(2 * small.words_per_sig());
  big.sign_hash_batch(xs_big.data(), 33, kMaxHashBits, sig_big.data(),
                      scratch);
  small.sign_hash_batch(xs_small.data(), 2, kMaxHashBits, sig_small.data(),
                        scratch);
  for (std::size_t p = 0; p < 2; ++p) {
    const BitVec ref = small.sign_hash(
        std::span<const float>(&xs_small[p * 5], 5));
    for (std::size_t w = 0; w < small.words_per_sig(); ++w)
      EXPECT_EQ(sig_small[p * small.words_per_sig() + w], ref.data()[w]);
  }
}

}  // namespace
}  // namespace deepcam::hash
