#include "hash/random_projection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace deepcam::hash {
namespace {

TEST(RandomProjection, Deterministic) {
  RandomProjection a(16, 64, 99), b(16, 64, 99);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 64; ++j) EXPECT_EQ(a.at(i, j), b.at(i, j));
}

TEST(RandomProjection, SeedsDiffer) {
  RandomProjection a(8, 32, 1), b(8, 32, 2);
  int same = 0;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 32; ++j)
      if (a.at(i, j) == b.at(i, j)) ++same;
  EXPECT_LT(same, 3);
}

TEST(RandomProjection, EntriesApproximatelyStandardNormal) {
  RandomProjection p(64, 1024, 5);
  double sum = 0.0, sum2 = 0.0;
  const double n = 64.0 * 1024.0;
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t j = 0; j < 1024; ++j) {
      sum += p.at(i, j);
      sum2 += double(p.at(i, j)) * p.at(i, j);
    }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RandomProjection, ProjectMatchesManualDot) {
  RandomProjection p(4, 8, 7);
  std::vector<float> x = {1.0f, -2.0f, 0.5f, 3.0f};
  std::vector<float> out(8);
  p.project(x, out);
  for (std::size_t j = 0; j < 8; ++j) {
    double manual = 0.0;
    for (std::size_t i = 0; i < 4; ++i) manual += double(x[i]) * p.at(i, j);
    EXPECT_NEAR(out[j], manual, 1e-4);
  }
}

TEST(RandomProjection, SignHashMatchesProjection) {
  RandomProjection p(6, 32, 9);
  std::vector<float> x = {0.3f, -0.1f, 2.0f, -5.0f, 0.0f, 1.0f};
  std::vector<float> proj(32);
  p.project(x, proj);
  const BitVec h = p.sign_hash(x);
  for (std::size_t j = 0; j < 32; ++j)
    EXPECT_EQ(h.get(j), proj[j] >= 0.0f) << j;
}

TEST(RandomProjection, PrefixHashIsPrefixOfFullHash) {
  RandomProjection p(10, 1024, 11);
  Rng rng(3);
  std::vector<float> x(10);
  for (auto& v : x) v = static_cast<float>(rng.gaussian());
  const BitVec full = p.sign_hash(x);
  for (std::size_t k : {256u, 512u, 768u}) {
    const BitVec pre = p.sign_hash_prefix(x, k);
    EXPECT_EQ(pre.size(), k);
    for (std::size_t j = 0; j < k; ++j) EXPECT_EQ(pre.get(j), full.get(j));
  }
}

TEST(RandomProjection, SignHashPrefixEqualsTruncatedFullHash) {
  // sign_hash_prefix projects only the first k columns; the prefix-of-iid-
  // columns property demands exact (bitwise) agreement with truncating the
  // full 1024-column hash, including at non-word-aligned k.
  RandomProjection p(150, 1024, 21);
  Rng rng(6);
  std::vector<float> x(150);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = (i % 5 == 0) ? 0.0f : static_cast<float>(rng.gaussian());
  const BitVec full = p.sign_hash(x);
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{256},
                        std::size_t{1023}, std::size_t{1024}}) {
    EXPECT_TRUE(p.sign_hash_prefix(x, k) == full.prefix(k)) << "k=" << k;
  }
}

TEST(RandomProjection, ProjectPrefixMatchesFullProjectionPrefix) {
  RandomProjection p(64, 512, 23);
  Rng rng(7);
  std::vector<float> x(64);
  for (auto& v : x) v = static_cast<float>(rng.gaussian());
  std::vector<float> full(512);
  p.project(x, full);
  std::vector<float> pre(100);
  p.project_prefix(x, pre);
  for (std::size_t j = 0; j < pre.size(); ++j)
    EXPECT_EQ(pre[j], full[j]) << j;
}

TEST(RandomProjection, DimMismatchThrows) {
  RandomProjection p(4, 8, 1);
  std::vector<float> wrong(5, 0.0f);
  std::vector<float> out(8);
  EXPECT_THROW(p.project(wrong, out), Error);
}

TEST(RandomProjection, ScaleInvarianceOfSignHash) {
  // sign(cx . C) == sign(x . C) for c > 0: hashing ignores magnitude.
  RandomProjection p(8, 128, 13);
  Rng rng(5);
  std::vector<float> x(8), x2(8);
  for (std::size_t i = 0; i < 8; ++i) {
    x[i] = static_cast<float>(rng.gaussian());
    x2[i] = 7.5f * x[i];
  }
  EXPECT_TRUE(p.sign_hash(x) == p.sign_hash(x2));
}

// Goemans–Williamson property: E[HD/k] = theta/pi. Verify the estimator is
// unbiased and concentrates as k grows (error ~ O(1/sqrt(k))).
class AngleEstimationSweep : public ::testing::TestWithParam<int> {};

TEST_P(AngleEstimationSweep, EstimatesKnownAngle) {
  const std::size_t k = static_cast<std::size_t>(GetParam());
  const double target = 1.0;  // radians
  // Two unit vectors in the plane with angle `target`.
  std::vector<float> x = {1.0f, 0.0f};
  std::vector<float> y = {static_cast<float>(std::cos(target)),
                          static_cast<float>(std::sin(target))};
  // Average the estimate over several independent projection matrices.
  double est_sum = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    RandomProjection p(2, k, 1000 + static_cast<std::uint64_t>(t));
    const std::size_t hd = p.sign_hash(x).hamming(p.sign_hash(y));
    est_sum += 3.14159265358979 * double(hd) / double(k);
  }
  const double est = est_sum / trials;
  // Std of a single estimate ~ pi*sqrt(p(1-p)/k); averaged over trials.
  const double tol = 4.0 * 3.141592 *
                     std::sqrt(0.25 / (double(k) * trials)) + 0.02;
  EXPECT_NEAR(est, target, tol) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(HashLengths, AngleEstimationSweep,
                         ::testing::Values(64, 128, 256, 512, 768, 1024));

}  // namespace
}  // namespace deepcam::hash
