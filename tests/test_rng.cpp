#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace deepcam {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
}

TEST(Rng, UniformIndexCoversAll) {
  Rng rng(10);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.uniform_index(8)];
  for (int h : hits) EXPECT_GT(h, 700);  // ~1000 expected each
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(12);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.fork(1);
  Rng parent2(13);
  Rng child2 = parent2.fork(1);
  // Same derivation is reproducible...
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child.next(), child2.next());
  // ...and different stream ids diverge.
  Rng parent3(13);
  Rng other = parent3.fork(2);
  int same = 0;
  Rng child3 = Rng(13).fork(1);
  for (int i = 0; i < 32; ++i)
    if (child3.next() == other.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace deepcam
