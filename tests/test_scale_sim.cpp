#include "systolic/scale_sim.hpp"

#include <gtest/gtest.h>

#include "common/tech.hpp"
#include "nn/topologies.hpp"
#include "systolic/eyeriss.hpp"

namespace deepcam::systolic {
namespace {

TEST(ScaleSim, SingleFoldHandComputed) {
  // K=14 fills the rows exactly, N=12 the columns: one fold.
  ArrayConfig cfg;
  cfg.rows = 14;
  cfg.cols = 12;
  cfg.model_memory = false;
  const LayerResult r = simulate_layer({"l", 100, 12, 14}, cfg);
  // fill(14) + stream(100) + drain(12) - 1 = 125.
  EXPECT_EQ(r.compute_cycles, 125u);
  EXPECT_EQ(r.macs, 100u * 12 * 14);
  // Utilization = busy/(cycles*PEs) = (14*12*100)/(125*168).
  EXPECT_NEAR(r.utilization, 14.0 * 12 * 100 / (125.0 * 168), 1e-9);
}

TEST(ScaleSim, FoldCountsMatchCeilDiv) {
  ArrayConfig cfg;
  cfg.rows = 14;
  cfg.cols = 12;
  cfg.model_memory = false;
  // K=25 -> 2 row folds (14+11), N=6 -> 1 col fold.
  const LayerResult r = simulate_layer({"conv1", 576, 6, 25}, cfg);
  const std::size_t fold1 = 14 + 576 + 6 - 1;
  const std::size_t fold2 = 11 + 576 + 6 - 1;
  EXPECT_EQ(r.compute_cycles, fold1 + fold2);
}

TEST(ScaleSim, UtilizationAtMostOne) {
  ArrayConfig cfg = eyeriss_config();
  for (const auto& dims :
       {nn::GemmDims{"a", 1, 1, 1}, nn::GemmDims{"b", 1000, 512, 4608},
        nn::GemmDims{"c", 1, 512, 512}}) {
    const LayerResult r = simulate_layer(dims, cfg);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
  }
}

TEST(ScaleSim, BigLayersApproachFullUtilization) {
  ArrayConfig cfg;
  cfg.rows = 14;
  cfg.cols = 12;
  cfg.model_memory = false;
  const LayerResult r = simulate_layer({"big", 4096, 120, 140}, cfg);
  EXPECT_GT(r.utilization, 0.9);
}

TEST(ScaleSim, TinyFcLayersWasteTheArray) {
  // The effect that makes CPUs/systolic arrays slow on LeNet FCs: M=1.
  ArrayConfig cfg = eyeriss_config();
  cfg.model_memory = false;
  const LayerResult r = simulate_layer({"fc", 1, 120, 256}, cfg);
  EXPECT_LT(r.utilization, 0.1);
}

TEST(ScaleSim, MemoryStallsOnlyWhenDramBound) {
  ArrayConfig cfg = eyeriss_config();
  // Compute-bound shape (high arithmetic intensity, fits in the global
  // buffer): no stalls.
  const LayerResult dense = simulate_layer({"d", 300, 120, 140}, cfg);
  EXPECT_EQ(dense.stall_cycles, 0u);
  // Memory-bound shape (tiny compute per byte): stalls appear.
  const LayerResult lean = simulate_layer({"l", 64, 12, 14}, cfg);
  EXPECT_GT(lean.stall_cycles, 0u);
  // Oversized working set triggers ifmap reload amplification.
  const LayerResult huge = simulate_layer({"h", 4096, 512, 4608}, cfg);
  EXPECT_GT(huge.dram_bytes,
            static_cast<std::size_t>(4096u * 4608u));
}

TEST(ScaleSim, SramAccessesIncludePartialSums) {
  ArrayConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.model_memory = false;
  // K=8 -> 2 row folds: each output read+written once extra.
  const LayerResult r = simulate_layer({"l", 10, 4, 8}, cfg);
  EXPECT_EQ(r.sram_accesses, 2u * r.macs + 10u * 4 * 3);
}

TEST(ScaleSim, ModelSimAggregates) {
  auto m = nn::make_lenet5(1);
  const ModelResult r = simulate_eyeriss(*m, {1, 1, 28, 28});
  EXPECT_EQ(r.layers.size(), 5u);
  EXPECT_EQ(r.total_macs(), nn::total_macs(*m, {1, 1, 28, 28}));
  EXPECT_GT(r.total_cycles(), 0u);
  EXPECT_GT(r.total_energy(), 0.0);
  EXPECT_GT(r.mean_utilization(), 0.0);
  EXPECT_LE(r.mean_utilization(), 1.0);
}

TEST(ScaleSim, EnergyDominatedByMemoryHierarchy) {
  // With SRAM at 6x and DRAM at 200x MAC energy (paper's ratios), memory
  // should dominate compute — the motivation stated in the paper's intro.
  auto m = nn::make_vgg11(2, 10);
  const ModelResult r = simulate_eyeriss(*m, {1, 3, 32, 32});
  double mac_energy = 0.0;
  for (const auto& l : r.layers)
    mac_energy += static_cast<double>(l.macs) * tech::kMacInt8Energy;
  EXPECT_GT(r.total_energy(), 5.0 * mac_energy);
}

TEST(ScaleSim, CyclesScaleWithModelSize) {
  auto lenet = nn::make_lenet5(3);
  auto vgg = nn::make_vgg11(4, 10);
  auto resnet = nn::make_resnet18(5, 100);
  const auto c_lenet = simulate_eyeriss(*lenet, {1, 1, 28, 28}).total_cycles();
  const auto c_vgg = simulate_eyeriss(*vgg, {1, 3, 32, 32}).total_cycles();
  const auto c_resnet =
      simulate_eyeriss(*resnet, {1, 3, 32, 32}).total_cycles();
  EXPECT_LT(c_lenet, c_vgg);
  EXPECT_LT(c_vgg, c_resnet);
}

TEST(ScaleSim, EyerissConfigMatchesPaper) {
  const ArrayConfig cfg = eyeriss_config();
  EXPECT_EQ(cfg.rows, 14u);
  EXPECT_EQ(cfg.cols, 12u);
  EXPECT_EQ(cfg.bytes_per_elem, 1u);  // INT8
}

}  // namespace
}  // namespace deepcam::systolic
