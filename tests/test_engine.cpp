// InferenceEngine equivalence and determinism tests.
//
// The contract under test (ISSUE 1 acceptance): run_batch over N samples
// produces bitwise-identical logits and identical aggregated cycle/energy
// totals to N sequential DeepCamAccelerator::run calls, for any thread
// count.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "core/accelerator.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "nn/topologies.hpp"

namespace deepcam::core {
namespace {

std::unique_ptr<nn::Model> tiny_cnn(std::uint64_t seed) {
  auto m = std::make_unique<nn::Model>("tiny_cnn");
  m->add(std::make_unique<nn::Conv2D>("conv1",
                                      nn::ConvSpec{1, 4, 3, 3, 1, 0}, seed));
  m->add(std::make_unique<nn::ReLU>("relu1"));
  m->add(std::make_unique<nn::MaxPool>("pool1", 2, 2));
  m->add(std::make_unique<nn::Flatten>("flat"));
  m->add(std::make_unique<nn::Linear>("fc", 4 * 3 * 3, 5, seed + 1));
  return m;
}

nn::Tensor random_image(nn::Shape s, std::uint64_t seed) {
  deepcam::Rng rng(seed);
  nn::Tensor t(s);
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian());
  return t;
}

std::vector<nn::Tensor> random_batch(std::size_t count, nn::Shape s,
                                     std::uint64_t seed) {
  std::vector<nn::Tensor> batch;
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(random_image(s, seed + i));
  return batch;
}

/// Bitwise tensor equality (EXPECT_FLOAT_EQ tolerates ULP drift; we demand
/// exact reproduction).
void expect_bitwise_equal(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_TRUE(a.shape() == b.shape());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           a.numel() * sizeof(float)));
}

void expect_reports_equal(const RunReport& a, const RunReport& b) {
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
  EXPECT_EQ(a.total_searches(), b.total_searches());
  EXPECT_EQ(a.total_dot_products(), b.total_dot_products());
  EXPECT_EQ(a.total_energy(), b.total_energy());  // exact double equality
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].cycles, b.layers[l].cycles);
    EXPECT_EQ(a.layers[l].cam_energy, b.layers[l].cam_energy);
    EXPECT_EQ(a.layers[l].postproc_energy, b.layers[l].postproc_energy);
    EXPECT_EQ(a.layers[l].ctxgen_energy, b.layers[l].ctxgen_energy);
  }
}

TEST(InferenceEngine, BatchMatchesSequentialBitwiseAtEveryThreadCount) {
  auto m = tiny_cnn(30);
  DeepCamConfig cfg;
  cfg.cam_rows = 16;
  const auto inputs = random_batch(6, {1, 1, 8, 8}, 31);

  // Reference: N sequential facade runs.
  DeepCamAccelerator acc(*m, cfg);
  std::vector<nn::Tensor> seq_logits;
  std::vector<RunReport> seq_reports(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    seq_logits.push_back(acc.run(inputs[i], &seq_reports[i]));

  for (std::size_t threads : {1u, 4u, 8u}) {
    InferenceEngine engine(acc.compiled(), threads);
    EXPECT_EQ(engine.thread_count(), threads);
    BatchReport br;
    const auto logits = engine.run_batch(inputs, &br);
    ASSERT_EQ(logits.size(), inputs.size());
    ASSERT_EQ(br.per_sample.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      expect_bitwise_equal(logits[i], seq_logits[i]);
      expect_reports_equal(br.per_sample[i], seq_reports[i]);
    }
  }
}

TEST(InferenceEngine, AggregateEqualsSumOfPerSampleReports) {
  auto m = tiny_cnn(32);
  DeepCamConfig cfg;
  cfg.cam_rows = 16;
  auto compiled = std::make_shared<const CompiledModel>(*m, cfg);
  InferenceEngine engine(compiled, 4);
  const auto inputs = random_batch(5, {1, 1, 8, 8}, 33);
  BatchReport br;
  engine.run_batch(inputs, &br);

  EXPECT_EQ(br.samples, inputs.size());
  EXPECT_EQ(br.threads, 4u);
  EXPECT_GT(br.wall_seconds, 0.0);
  EXPECT_GT(br.throughput(), 0.0);
  EXPECT_GT(br.simulated_throughput(), 0.0);

  std::size_t cycles = 0, searches = 0, dots = 0, patches = 0;
  double energy = 0.0;
  for (const auto& r : br.per_sample) {
    cycles += r.total_cycles();
    searches += r.total_searches();
    dots += r.total_dot_products();
    for (const auto& l : r.layers) patches += l.patches;
  }
  // Energy is merged component-wise in sample order; mirror that exactly so
  // doubles can be compared for equality, not just closeness.
  for (std::size_t l = 0; l < br.aggregate.layers.size(); ++l) {
    double cam_e = 0.0, pp_e = 0.0, cg_e = 0.0;
    for (const auto& r : br.per_sample) {
      cam_e += r.layers[l].cam_energy;
      pp_e += r.layers[l].postproc_energy;
      cg_e += r.layers[l].ctxgen_energy;
    }
    EXPECT_EQ(br.aggregate.layers[l].cam_energy, cam_e);
    EXPECT_EQ(br.aggregate.layers[l].postproc_energy, pp_e);
    EXPECT_EQ(br.aggregate.layers[l].ctxgen_energy, cg_e);
    energy += cam_e + pp_e + cg_e;
  }
  EXPECT_EQ(br.aggregate.total_cycles(), cycles);
  EXPECT_EQ(br.aggregate.total_searches(), searches);
  EXPECT_EQ(br.aggregate.total_dot_products(), dots);
  EXPECT_NEAR(br.aggregate.total_energy(), energy, 1e-18);
  std::size_t agg_patches = 0;
  for (const auto& l : br.aggregate.layers) agg_patches += l.patches;
  EXPECT_EQ(agg_patches, patches);
}

TEST(InferenceEngine, AggregatesPeripheralOnlyModels) {
  // A model with no CAM-mapped layers produces reports with empty `layers`;
  // the aggregate must still sum peripheral cycles across the batch rather
  // than keep the last sample's value.
  auto m = std::make_unique<nn::Model>("peripheral_only");
  m->add(std::make_unique<nn::ReLU>("relu"));
  m->add(std::make_unique<nn::MaxPool>("pool", 2, 2));
  m->add(std::make_unique<nn::Flatten>("flat"));
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  EXPECT_EQ(compiled->cam_layer_count(), 0u);
  InferenceEngine engine(compiled, 2);
  BatchReport br;
  engine.run_batch(random_batch(3, {1, 1, 8, 8}, 60), &br);
  std::size_t cycles = 0;
  for (const auto& r : br.per_sample) {
    EXPECT_TRUE(r.layers.empty());
    EXPECT_GT(r.peripheral_cycles, 0u);
    cycles += r.peripheral_cycles;
  }
  EXPECT_EQ(br.aggregate.peripheral_cycles, cycles);
  EXPECT_EQ(br.aggregate.total_cycles(), cycles);
}

TEST(InferenceEngine, RepeatedBatchesAreDeterministic) {
  auto m = tiny_cnn(34);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 4);
  const auto inputs = random_batch(4, {1, 1, 8, 8}, 35);
  BatchReport br1, br2;
  const auto out1 = engine.run_batch(inputs, &br1);
  const auto out2 = engine.run_batch(inputs, &br2);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    expect_bitwise_equal(out1[i], out2[i]);
  expect_reports_equal(br1.aggregate, br2.aggregate);
}

TEST(InferenceEngine, BatchedTensorOverloadSplitsSamples) {
  auto m = tiny_cnn(36);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 2);
  // One batched {3,1,8,8} tensor == three singleton tensors.
  nn::Tensor batched({3, 1, 8, 8});
  std::vector<nn::Tensor> singles;
  deepcam::Rng rng(37);
  for (std::size_t i = 0; i < batched.numel(); ++i)
    batched[i] = static_cast<float>(rng.gaussian());
  for (std::size_t n = 0; n < 3; ++n)
    singles.push_back(batched.slice_sample(n));

  const auto from_batched = engine.run_batch(batched);
  const auto from_singles = engine.run_batch(singles);
  ASSERT_EQ(from_batched.size(), 3u);
  for (std::size_t n = 0; n < 3; ++n)
    expect_bitwise_equal(from_batched[n], from_singles[n]);
}

TEST(InferenceEngine, EmptyBatch) {
  auto m = tiny_cnn(38);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 2);
  BatchReport br;
  const auto out = engine.run_batch(std::vector<nn::Tensor>{}, &br);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(br.samples, 0u);
  EXPECT_EQ(br.aggregate.total_cycles(), 0u);
}

TEST(InferenceEngine, BadInputPropagatesAsError) {
  auto m = tiny_cnn(40);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 2);
  // Sample 1 has a batch dimension of 2 — workers must reject it and the
  // engine must surface the error without deadlocking.
  std::vector<nn::Tensor> inputs;
  inputs.push_back(random_image({1, 1, 8, 8}, 41));
  inputs.push_back(random_image({2, 1, 8, 8}, 42));
  EXPECT_THROW(engine.run_batch(inputs), deepcam::Error);
  // Engine stays usable after a failed batch.
  const auto ok = engine.run_batch(random_batch(2, {1, 1, 8, 8}, 43));
  EXPECT_EQ(ok.size(), 2u);

  // With several failing samples the engine surfaces the lowest-index
  // sample's error, independent of thread-completion order.
  std::vector<nn::Tensor> multi_bad;
  multi_bad.push_back(random_image({1, 1, 8, 8}, 44));
  multi_bad.push_back(random_image({1, 2, 8, 8}, 45));  // channel mismatch
  multi_bad.push_back(random_image({2, 1, 8, 8}, 46));  // batch > 1
  try {
    engine.run_batch(multi_bad);
    FAIL() << "expected deepcam::Error";
  } catch (const deepcam::Error& e) {
    // Sample 1 fails on channel count (in the context generator), sample 2
    // on the batch-size-1 check; the lower index must win.
    EXPECT_NE(std::string(e.what()).find("in_channels"), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(InferenceEngine, QuantizedSenseModeStaysDeterministic) {
  // The TDC-quantized sense amp is a pure function of the true HD, so the
  // engine's determinism contract must hold in kQuantized mode too.
  auto m = tiny_cnn(44);
  DeepCamConfig cfg;
  cfg.sense.mode = cam::SenseMode::kQuantized;
  DeepCamAccelerator acc(*m, cfg);
  const auto inputs = random_batch(3, {1, 1, 8, 8}, 45);
  std::vector<nn::Tensor> seq;
  for (const auto& in : inputs) seq.push_back(acc.run(in));
  InferenceEngine engine(acc.compiled(), 8);
  const auto par = engine.run_batch(inputs);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    expect_bitwise_equal(par[i], seq[i]);
}

TEST(InferenceEngine, LenetPipelineMatchesSequential) {
  // Larger end-to-end check on the LeNet topology used by the example.
  auto m = nn::make_lenet5(46);
  DeepCamConfig cfg;
  cfg.cam_rows = 64;
  cfg.default_hash_bits = 256;  // keep the test quick
  DeepCamAccelerator acc(*m, cfg);
  const auto inputs = random_batch(4, {1, 1, 28, 28}, 47);
  std::vector<nn::Tensor> seq;
  std::vector<RunReport> seq_reports(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    seq.push_back(acc.run(inputs[i], &seq_reports[i]));
  InferenceEngine engine(acc.compiled(), 4);
  BatchReport br;
  const auto par = engine.run_batch(inputs, &br);
  std::size_t cycles = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    expect_bitwise_equal(par[i], seq[i]);
    expect_reports_equal(br.per_sample[i], seq_reports[i]);
    cycles += seq_reports[i].total_cycles();
  }
  EXPECT_EQ(br.aggregate.total_cycles(), cycles);
}

// --- submit()/BatchFuture path (PR 4) --------------------------------------
//
// run_batch() is now a thin wrapper over submit + per-batch completion
// state; these tests pin the regression contract: bitwise-identical
// outputs, identical error propagation (lowest failing sample index), and
// correct overlap of multiple in-flight batches.

TEST(InferenceEngineSubmit, SubmitMatchesRunBatchBitwise) {
  auto m = tiny_cnn(60);
  DeepCamConfig cfg;
  cfg.cam_rows = 16;
  auto compiled = std::make_shared<const CompiledModel>(*m, cfg);
  InferenceEngine engine(compiled, 4);
  const auto inputs = random_batch(6, {1, 1, 8, 8}, 61);

  BatchReport wrapped_rep;
  const auto wrapped = engine.run_batch(inputs, &wrapped_rep);

  BatchFuture future = engine.submit(inputs);  // copies the batch
  ASSERT_TRUE(future.valid());
  BatchReport submitted_rep;
  const auto submitted = future.get(&submitted_rep);
  EXPECT_FALSE(future.valid());  // one-shot

  ASSERT_EQ(submitted.size(), wrapped.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    expect_bitwise_equal(submitted[i], wrapped[i]);
    expect_reports_equal(submitted_rep.per_sample[i],
                         wrapped_rep.per_sample[i]);
  }
  EXPECT_EQ(submitted_rep.samples, wrapped_rep.samples);
  expect_reports_equal(submitted_rep.aggregate, wrapped_rep.aggregate);
}

TEST(InferenceEngineSubmit, ManyConcurrentInFlightBatchesAnyGetOrder) {
  auto m = tiny_cnn(62);
  DeepCamConfig cfg;
  cfg.cam_rows = 16;
  auto compiled = std::make_shared<const CompiledModel>(*m, cfg);
  DeepCamAccelerator acc(*m, cfg);
  InferenceEngine engine(acc.compiled(), 2);

  // Submit 5 batches back-to-back without waiting: all are in flight
  // against a 2-thread pool. Collect them in reverse order to prove each
  // batch's completion state is independent of submission order.
  std::vector<std::vector<nn::Tensor>> batches;
  std::vector<BatchFuture> futures;
  for (std::size_t b = 0; b < 5; ++b) {
    batches.push_back(random_batch(3, {1, 1, 8, 8}, 63 + 10 * b));
    futures.push_back(engine.submit(batches.back()));
  }
  EXPECT_GE(engine.in_flight_batches(), 1u);
  for (std::size_t b = futures.size(); b-- > 0;) {
    const auto logits = futures[b].get();
    ASSERT_EQ(logits.size(), batches[b].size());
    for (std::size_t i = 0; i < logits.size(); ++i)
      expect_bitwise_equal(logits[i], acc.run(batches[b][i]));
  }
  EXPECT_EQ(engine.in_flight_batches(), 0u);
}

TEST(InferenceEngineSubmit, ConcurrentRunBatchCallersNoLongerSerialize) {
  // Pre-PR the engine held a single-flight submit lock; now concurrent
  // run_batch callers interleave safely and each gets its own results.
  auto m = tiny_cnn(70);
  DeepCamConfig cfg;
  cfg.cam_rows = 16;
  DeepCamAccelerator acc(*m, cfg);
  InferenceEngine engine(acc.compiled(), 2);

  constexpr std::size_t kCallers = 4;
  std::vector<std::vector<nn::Tensor>> inputs(kCallers);
  std::vector<std::vector<nn::Tensor>> outputs(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c)
    inputs[c] = random_batch(4, {1, 1, 8, 8}, 71 + 10 * c);
  {
    std::vector<std::thread> callers;
    for (std::size_t c = 0; c < kCallers; ++c)
      callers.emplace_back(
          [&, c] { outputs[c] = engine.run_batch(inputs[c]); });
    for (auto& t : callers) t.join();
  }
  for (std::size_t c = 0; c < kCallers; ++c) {
    ASSERT_EQ(outputs[c].size(), inputs[c].size());
    for (std::size_t i = 0; i < inputs[c].size(); ++i)
      expect_bitwise_equal(outputs[c][i], acc.run(inputs[c][i]));
  }
}

TEST(InferenceEngineSubmit, ErrorPropagatesThroughFutureLowestIndexWins) {
  auto m = tiny_cnn(80);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 2);
  std::vector<nn::Tensor> bad;
  bad.push_back(random_image({1, 1, 8, 8}, 81));
  bad.push_back(random_image({1, 2, 8, 8}, 82));  // channel mismatch
  bad.push_back(random_image({2, 1, 8, 8}, 83));  // batch > 1
  BatchFuture future = engine.submit(bad);
  try {
    future.get();
    FAIL() << "expected deepcam::Error";
  } catch (const deepcam::Error& e) {
    EXPECT_NE(std::string(e.what()).find("in_channels"), std::string::npos)
        << "got: " << e.what();
  }
  // Errors in one batch leave concurrent/subsequent batches untouched.
  const auto ok = engine.submit(random_batch(2, {1, 1, 8, 8}, 84)).get();
  EXPECT_EQ(ok.size(), 2u);
}

TEST(InferenceEngineSubmit, EmptySubmitCompletesImmediately) {
  auto m = tiny_cnn(86);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 2);
  BatchFuture future = engine.submit({});
  EXPECT_TRUE(future.ready());
  BatchReport br;
  EXPECT_TRUE(future.get(&br).empty());
  EXPECT_EQ(br.samples, 0u);
}

TEST(InferenceEngineSubmit, DestructorDrainsUncollectedBatches) {
  auto m = tiny_cnn(88);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  auto inputs = random_batch(4, {1, 1, 8, 8}, 89);
  BatchFuture abandoned;
  {
    InferenceEngine engine(compiled, 1);
    abandoned = engine.submit(inputs);
    // Engine destruction must finish the in-flight batch, not hang or
    // leave dangling sample pointers. (The future must not be touched
    // after the engine is gone; dropping it is fine.)
  }
  SUCCEED();
}

// --- wait_for()/cancel() — the serving tier's request-timeout hooks --------

TEST(InferenceEngineSubmit, WaitForTimesOutThenReportsCompletion) {
  auto m = nn::make_lenet5(90);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 1);
  BatchFuture future = engine.submit(random_batch(4, {1, 1, 28, 28}, 91));
  // A zero-length wait on a conv-heavy 4-sample batch against one thread:
  // the work cannot have finished between submit and this call.
  EXPECT_FALSE(future.wait_for(std::chrono::nanoseconds::zero()));
  future.wait();
  EXPECT_TRUE(future.wait_for(std::chrono::nanoseconds::zero()));
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.get().size(), 4u);
}

TEST(InferenceEngineSubmit, CancelRemovesQueuedBatchButSparesNeighbors) {
  auto m = nn::make_lenet5(92);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 1);
  // The single worker picks up the head batch sample-by-sample; the second
  // batch sits fully undispatched in the FIFO for the duration of four
  // LeNet forwards — ample time to cancel it deterministically.
  const auto head_inputs = random_batch(4, {1, 1, 28, 28}, 93);
  BatchFuture head = engine.submit(head_inputs);
  BatchFuture queued = engine.submit(random_batch(2, {1, 1, 28, 28}, 94));
  EXPECT_TRUE(queued.cancel());
  EXPECT_TRUE(queued.valid());  // still collectable — as an error
  EXPECT_TRUE(queued.ready());  // cancellation completes it immediately
  try {
    queued.get();
    FAIL() << "expected deepcam::Error from a cancelled batch";
  } catch (const deepcam::Error& e) {
    EXPECT_NE(std::string(e.what()).find("batch cancelled"),
              std::string::npos)
        << "got: " << e.what();
  }
  // The head batch is untouched by its neighbor's cancellation, and the
  // in-flight bookkeeping settles back to zero.
  EXPECT_EQ(head.get().size(), head_inputs.size());
  EXPECT_EQ(engine.in_flight_batches(), 0u);
}

TEST(InferenceEngineSubmit, CancelRefusesOnceExecutionStartedOrFinished) {
  auto m = tiny_cnn(95);
  auto compiled = std::make_shared<const CompiledModel>(*m, DeepCamConfig{});
  InferenceEngine engine(compiled, 2);
  BatchFuture future = engine.submit(random_batch(3, {1, 1, 8, 8}, 96));
  future.wait();                  // definitely dispatched (and done)
  EXPECT_FALSE(future.cancel());  // results are never torn down
  EXPECT_EQ(future.get().size(), 3u);  // ... and remain collectable

  // Same refusal for an already-collected empty batch (done from birth).
  BatchFuture empty = engine.submit({});
  EXPECT_FALSE(empty.cancel());
  EXPECT_TRUE(empty.get().empty());
}

TEST(ModelConstInference, InferMatchesForwardBitwise) {
  // The engine leans on Layer::infer being numerically identical to
  // forward(in, false) — verify on both topology families.
  const auto in_small = random_image({1, 1, 8, 8}, 50);
  auto tiny = tiny_cnn(51);
  expect_bitwise_equal(tiny->infer(in_small),
                       tiny->forward(in_small, false));
  auto resnet = nn::make_resnet18(52, 10);
  const auto in_res = random_image({1, 3, 32, 32}, 53);
  expect_bitwise_equal(resnet->infer(in_res),
                       resnet->forward(in_res, false));
}

}  // namespace
}  // namespace deepcam::core
