// JSON reader hardening tests (common/json.hpp parse_json).
//
// Table-driven over hostile inputs: malformed, truncated, duplicate-key,
// out-of-range and pathological documents must all produce ParseError with
// a meaningful message and a correct line/column — never a crash (the CI
// ASan/UBSan job runs this suite). Valid-input tests pin the DOM shape the
// spec loader builds on.
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"

namespace deepcam {
namespace {

// --- valid documents ------------------------------------------------------

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-17.25").as_number(), -17.25);
  EXPECT_DOUBLE_EQ(parse_json("6.02e23").as_number(), 6.02e23);
  EXPECT_DOUBLE_EQ(parse_json("-0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse_json("0.5").as_number(), 0.5);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_json("  \t\r\n 7 \n").as_number(), 7.0);
}

TEST(JsonReader, ParsesContainers) {
  const JsonValue doc = parse_json(
      R"({"a": [1, 2, 3], "b": {"nested": true}, "c": [], "d": {}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.members().size(), 4u);
  EXPECT_EQ(doc.at("a").items().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").items()[2].as_number(), 3.0);
  EXPECT_TRUE(doc.at("b").at("nested").as_bool());
  EXPECT_TRUE(doc.at("c").items().empty());
  EXPECT_TRUE(doc.at("d").members().empty());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonReader, MembersKeepDocumentOrder) {
  const JsonValue doc = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(JsonReader, DecodesEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\b\f\n\r\t")").as_string(),
            "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 (4-byte UTF-8).
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonReader, TracksPositions) {
  const JsonValue doc = parse_json("{\n  \"a\": 1,\n  \"b\": [true]\n}");
  EXPECT_EQ(doc.line(), 1u);
  EXPECT_EQ(doc.column(), 1u);
  EXPECT_EQ(doc.at("a").line(), 2u);
  EXPECT_EQ(doc.at("a").column(), 8u);
  EXPECT_EQ(doc.at("b").line(), 3u);
  EXPECT_EQ(doc.at("b").items()[0].line(), 3u);
}

TEST(JsonReader, AsUintAcceptsExactIntegers) {
  EXPECT_EQ(parse_json("0").as_uint(), 0u);
  EXPECT_EQ(parse_json("9007199254740992").as_uint(),
            9007199254740992ull);  // 2^53
  EXPECT_EQ(parse_json("1024").as_uint(), 1024u);
}

// --- hostile inputs, table-driven -----------------------------------------

struct BadInput {
  const char* name;
  const char* text;
  const char* message_fragment;
  std::size_t line = 0;    // 0 = don't check
  std::size_t column = 0;  // 0 = don't check
};

class JsonReaderBadInput : public ::testing::TestWithParam<BadInput> {};

TEST_P(JsonReaderBadInput, ThrowsParseErrorWithPosition) {
  const BadInput& p = GetParam();
  try {
    parse_json(p.text);
    FAIL() << "expected ParseError for: " << p.text;
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(p.message_fragment),
              std::string::npos)
        << "message \"" << e.what() << "\" lacks \"" << p.message_fragment
        << "\"";
    if (p.line != 0) EXPECT_EQ(e.line(), p.line) << e.what();
    if (p.column != 0) EXPECT_EQ(e.column(), p.column) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Hardening, JsonReaderBadInput,
    ::testing::Values(
        BadInput{"empty", "", "end of input", 1, 1},
        BadInput{"whitespace_only", "  \n ", "end of input", 2, 2},
        BadInput{"truncated_object", "{\"a\":", "end of input"},
        BadInput{"truncated_array", "[1,", "end of input"},
        BadInput{"truncated_string", "\"abc", "unterminated string"},
        BadInput{"truncated_literal", "tru", "invalid literal"},
        BadInput{"bad_literal", "nul!", "invalid literal"},
        BadInput{"trailing_garbage", "{} x", "trailing characters", 1, 4},
        BadInput{"duplicate_key", "{\"a\": 1, \"a\": 2}", "duplicate object",
                 1, 10},
        BadInput{"duplicate_key_multiline", "{\n \"k\": 1,\n \"k\": 2\n}",
                 "duplicate object", 3, 2},
        BadInput{"overflow", "1e999", "out of range", 1, 1},
        BadInput{"negative_overflow", "-1e999", "out of range"},
        BadInput{"leading_zero", "0123", "leading zeros"},
        BadInput{"plus_sign", "+1", "expected a value"},
        BadInput{"bare_dot", ".5", "expected a value"},
        BadInput{"trailing_dot", "1.", "digit required after decimal"},
        BadInput{"empty_exponent", "1e", "digit required in exponent"},
        BadInput{"lone_minus", "-", "invalid number"},
        BadInput{"unquoted_key", "{a: 1}", "quoted object key", 1, 2},
        BadInput{"missing_colon", "{\"a\" 1}", "':' after object key"},
        BadInput{"missing_comma", "[1 2]", "',' or ']'"},
        BadInput{"bare_comma", "[,1]", "expected a value"},
        BadInput{"trailing_comma_object", "{\"a\": 1,}", "quoted object key"},
        BadInput{"control_char", "\"a\nb\"", "unescaped control"},
        BadInput{"bad_escape", "\"\\q\"", "invalid escape"},
        BadInput{"truncated_unicode", "\"\\u12", "truncated \\u"},
        BadInput{"bad_hex", "\"\\u12zz\"", "invalid hex digit"},
        BadInput{"lone_high_surrogate", "\"\\ud800\"", "unpaired high"},
        BadInput{"lone_low_surrogate", "\"\\udc00\"", "unpaired low"},
        BadInput{"bad_surrogate_pair", "\"\\ud800\\u0041\"",
                 "invalid low surrogate"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(JsonReader, RejectsPathologicalNesting) {
  std::string deep(4096, '[');
  EXPECT_THROW(parse_json(deep), ParseError);
  // A modest depth still parses fine.
  std::string ok = std::string(64, '[') + "1" + std::string(64, ']');
  EXPECT_NO_THROW(parse_json(ok));
}

// --- checked accessors ----------------------------------------------------

TEST(JsonReader, AccessorKindMismatchThrows) {
  const JsonValue doc = parse_json(R"({"s": "x", "n": 1.5, "neg": -2})");
  EXPECT_THROW(doc.at("s").as_number(), ParseError);
  EXPECT_THROW(doc.at("n").as_string(), ParseError);
  EXPECT_THROW(doc.at("n").items(), ParseError);
  EXPECT_THROW(doc.at("s").members(), ParseError);
  EXPECT_THROW(doc.as_bool(), ParseError);
  EXPECT_THROW(doc.at("missing"), ParseError);
  // as_uint: negatives, fractions, and beyond-2^53 all rejected.
  EXPECT_THROW(doc.at("neg").as_uint(), ParseError);
  EXPECT_THROW(doc.at("n").as_uint(), ParseError);
  EXPECT_THROW(parse_json("9007199254740994").as_uint(), ParseError);
}

TEST(JsonReader, AccessorErrorsCarryValuePosition) {
  const JsonValue doc = parse_json("{\n  \"port\": \"eighty\"\n}");
  try {
    doc.at("port").as_number();
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 11u);
    EXPECT_NE(std::string(e.what()).find("expected a number"),
              std::string::npos);
  }
}

TEST(JsonReader, ParseJsonFileErrors) {
  EXPECT_THROW(parse_json_file("/nonexistent/path/spec.json"), Error);
}

}  // namespace
}  // namespace deepcam
