#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace deepcam::nn {
namespace {

TEST(Shape, NumelAndEquality) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.numel(), 120u);
  EXPECT_TRUE((s == Shape{2, 3, 4, 5}));
  EXPECT_FALSE((s == Shape{2, 3, 4, 6}));
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({1, 2, 3, 3});
  EXPECT_EQ(t.numel(), 18u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, AtIndexingRowMajorNCHW) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  // Flat index = ((n*C + c)*H + h)*W + w.
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({1, 1, 2, 2});
  EXPECT_THROW(t.at(0, 0, 2, 0), Error);
  EXPECT_THROW(t.at(0, 1, 0, 0), Error);
  EXPECT_THROW(t.at(1, 0, 0, 0), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({1, 2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({1, 8, 1, 1});
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped({1, 7, 1, 1}), Error);
}

TEST(Tensor, FillSetsAll) {
  Tensor t({1, 1, 3, 3});
  t.fill(2.5f);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(ExtractPatch, IdentityWindowNoPad) {
  Tensor in({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) in[i] = static_cast<float>(i + 1);
  std::vector<float> patch(4);
  extract_patch(in, 0, 0, 0, 2, 2, 1, 0, patch);
  EXPECT_EQ(patch, (std::vector<float>{1, 2, 4, 5}));
  extract_patch(in, 0, 1, 1, 2, 2, 1, 0, patch);
  EXPECT_EQ(patch, (std::vector<float>{5, 6, 8, 9}));
}

TEST(ExtractPatch, ZeroPadding) {
  Tensor in({1, 1, 2, 2});
  in.at(0, 0, 0, 0) = 1.0f;
  in.at(0, 0, 0, 1) = 2.0f;
  in.at(0, 0, 1, 0) = 3.0f;
  in.at(0, 0, 1, 1) = 4.0f;
  std::vector<float> patch(9);
  // 3x3 window centred at (0,0) with pad 1: top row and left col are zero.
  extract_patch(in, 0, 0, 0, 3, 3, 1, 1, patch);
  EXPECT_EQ(patch, (std::vector<float>{0, 0, 0, 0, 1, 2, 0, 3, 4}));
}

TEST(ExtractPatch, ChannelMajorOrder) {
  // The context layout the paper's Fig. 4 shows: channel-major.
  Tensor in({1, 2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) in[i] = static_cast<float>(i);
  std::vector<float> patch(8);
  extract_patch(in, 0, 0, 0, 2, 2, 1, 0, patch);
  // Channel 0 block first (0..3), then channel 1 block (4..7).
  EXPECT_EQ(patch, (std::vector<float>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ExtractPatch, StrideRespected) {
  Tensor in({1, 1, 5, 5});
  for (std::size_t i = 0; i < 25; ++i) in[i] = static_cast<float>(i);
  std::vector<float> patch(1);
  extract_patch(in, 0, 1, 2, 1, 1, 2, 0, patch);
  // Window top-left at (1*2, 2*2) = (2,4) -> flat 2*5+4 = 14.
  EXPECT_EQ(patch[0], 14.0f);
}

TEST(ExtractPatch, BatchIndexing) {
  Tensor in({2, 1, 2, 2});
  in.at(1, 0, 0, 0) = 42.0f;
  std::vector<float> patch(4);
  extract_patch(in, 1, 0, 0, 2, 2, 1, 0, patch);
  EXPECT_EQ(patch[0], 42.0f);
}

}  // namespace
}  // namespace deepcam::nn
