// Plan subsystem tests: the estimator-accuracy gate (CostModel vs the
// DeepCAM sim backend), cost-model properties (linearity, monotonicity),
// planner determinism and quality, and the plan cache's determinism / hit /
// miss contract.
//
// The acceptance band is ±15%, but the engine's accounting is a pure
// function of (geometry, config) — so the gate also pins exactness on
// LeNet5 to catch silent drift early.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hash/random_projection.hpp"
#include "nn/topologies.hpp"
#include "plan/cost_model.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "plan/report_io.hpp"
#include "sim/estimator_check.hpp"

namespace deepcam {
namespace {

const char* kTopologies[] = {"lenet5", "vgg11", "vgg16", "resnet18"};

core::DeepCamConfig default_config() { return core::DeepCamConfig{}; }

// --- estimator-accuracy gate ----------------------------------------------

TEST(EstimatorGate, LeNetMeasuredAtEveryBatch) {
  const auto model = nn::make_model("lenet5", 1);
  const nn::Shape input = nn::input_spec_for("lenet5").shape();
  for (const std::size_t batch : {1u, 8u, 32u}) {
    const sim::EstimatorCheck chk =
        sim::check_estimator(*model, input, default_config(), batch);
    EXPECT_LE(chk.cycle_rel_error, 0.15)
        << "lenet5 batch " << batch << ": estimated " << chk.estimated_cycles
        << " vs measured " << chk.measured_cycles;
    EXPECT_LE(chk.energy_rel_error, 0.15);
    // The accounting is data-independent; the estimate should be exact.
    EXPECT_EQ(static_cast<double>(chk.estimated_cycles), chk.measured_cycles);
  }
}

TEST(EstimatorGate, LeNetMeasuredAcrossConfigs) {
  const auto model = nn::make_model("lenet5", 1);
  const nn::Shape input = nn::input_spec_for("lenet5").shape();

  core::DeepCamConfig idealized;
  idealized.preset = core::CyclePreset::kIdealized;

  core::DeepCamConfig ws;
  ws.dataflow = core::Dataflow::kWeightStationary;
  ws.cam_rows = 128;

  core::DeepCamConfig vhl;
  vhl.layer_hash_bits = {256, 512, 768, 1024, 512};

  for (const core::DeepCamConfig& cfg : {idealized, ws, vhl}) {
    const sim::EstimatorCheck chk =
        sim::check_estimator(*model, input, cfg, 8);
    EXPECT_LE(chk.cycle_rel_error, 0.15);
    EXPECT_LE(chk.energy_rel_error, 0.15);
    EXPECT_EQ(static_cast<double>(chk.estimated_cycles), chk.measured_cycles);
  }
}

TEST(EstimatorGate, LargeTopologiesMeasuredAtBatchOne) {
  // VGG/ResNet sim runs cost real wall-clock, so they are measured once at
  // batch 1; batches 8 and 32 follow from the backend's additive
  // merge-report contract, pinned by EstimateLinearInBatch below.
  for (const char* name : {"vgg11", "vgg16", "resnet18"}) {
    const auto model = nn::make_model(name, 1);
    const nn::Shape input = nn::input_spec_for(name).shape();
    const sim::EstimatorCheck chk =
        sim::check_estimator(*model, input, default_config(), 1);
    EXPECT_LE(chk.cycle_rel_error, 0.15)
        << name << ": estimated " << chk.estimated_cycles << " vs measured "
        << chk.measured_cycles;
    EXPECT_LE(chk.energy_rel_error, 0.15) << name;
  }
}

// --- cost-model properties -------------------------------------------------

TEST(CostModelProperties, TotalsLinearInBatch) {
  for (const char* name : kTopologies) {
    const auto model = nn::make_model(name, 1);
    const plan::CostModel cost(
        plan::extract_geometry(*model, nn::input_spec_for(name).shape()));
    const plan::CostEstimate one = cost.estimate(default_config(), 1);
    for (const std::size_t b : {8u, 32u}) {
      const plan::CostEstimate est = cost.estimate(default_config(), b);
      EXPECT_EQ(est.total_cycles(), b * one.total_cycles()) << name;
      EXPECT_DOUBLE_EQ(est.total_energy(), b * one.total_energy()) << name;
    }
  }
}

TEST(CostModelProperties, EstimatesMonotoneInBatch) {
  const auto model = nn::make_model("lenet5", 1);
  const plan::CostModel cost(
      plan::extract_geometry(*model, nn::input_spec_for("lenet5").shape()));
  std::size_t prev_total = 0, prev_makespan = 0;
  for (const std::size_t b : {1u, 2u, 8u, 16u, 32u}) {
    const plan::CostEstimate est = cost.estimate(default_config(), b, 4, 8);
    EXPECT_GE(est.total_cycles(), prev_total);
    EXPECT_GE(est.makespan_cycles(), prev_makespan);
    prev_total = est.total_cycles();
    prev_makespan = est.makespan_cycles();
  }
}

TEST(CostModelProperties, EstimatesMonotoneInHashBits) {
  // Conservative search cycles and per-bit search energy both grow with k,
  // so homogeneous hash length sweeps must be nondecreasing in cost.
  for (const char* name : {"lenet5", "vgg11"}) {
    const auto model = nn::make_model(name, 1);
    const plan::CostModel cost(
        plan::extract_geometry(*model, nn::input_spec_for(name).shape()));
    std::size_t prev_cycles = 0;
    double prev_energy = 0.0;
    for (const int k_bits : hash::kHashLengths) {
      const std::size_t k = static_cast<std::size_t>(k_bits);
      core::DeepCamConfig cfg;
      cfg.default_hash_bits = k;
      const plan::CostEstimate est = cost.estimate(cfg, 1);
      EXPECT_GE(est.sample_cycles(), prev_cycles) << name << " k=" << k;
      EXPECT_GE(est.sample_energy(), prev_energy) << name << " k=" << k;
      prev_cycles = est.sample_cycles();
      prev_energy = est.sample_energy();
    }
  }
}

TEST(CostModelProperties, GeometryDigestSeparatesModels) {
  std::vector<std::uint64_t> digests;
  for (const char* name : kTopologies) {
    const auto model = nn::make_model(name, 1);
    const plan::ModelGeometry geo =
        plan::extract_geometry(*model, nn::input_spec_for(name).shape());
    // Stable: re-extraction digests identically.
    EXPECT_EQ(geo.digest(),
              plan::extract_geometry(*model,
                                     nn::input_spec_for(name).shape())
                  .digest());
    digests.push_back(geo.digest());
  }
  for (std::size_t i = 0; i < digests.size(); ++i)
    for (std::size_t j = i + 1; j < digests.size(); ++j)
      EXPECT_NE(digests[i], digests[j]);
}

// --- planner ---------------------------------------------------------------

plan::PlannerConfig lenet_planner_config() {
  plan::PlannerConfig cfg;
  cfg.batch = 8;
  cfg.max_rel_error = 0.5;
  return cfg;
}

TEST(Planner, DeterministicPlanBytes) {
  const auto model = nn::make_model("lenet5", 1);
  const nn::Shape input = nn::input_spec_for("lenet5").shape();
  const plan::Planner planner(*model, input);
  const plan::Plan a = planner.plan(lenet_planner_config());
  const plan::Plan b = planner.plan(lenet_planner_config());
  EXPECT_EQ(plan::plan_to_json(a), plan::plan_to_json(b));
  EXPECT_GT(a.configs_evaluated, 1u);
}

TEST(Planner, BeatsFixedBaselineUnderEveryObjective) {
  // The planned configuration must cost no more than the fixed default
  // (1024-bit homogeneous hashes, default rows/dataflow) under the same
  // objective — the plan search includes that point, so equality is the
  // worst case.
  const auto model = nn::make_model("lenet5", 1);
  const nn::Shape input = nn::input_spec_for("lenet5").shape();
  const plan::Planner planner(*model, input);
  const plan::CostModel& cost = planner.cost_model();
  for (const plan::Objective obj :
       {plan::Objective::kCycles, plan::Objective::kEnergy,
        plan::Objective::kEdp}) {
    plan::PlannerConfig cfg = lenet_planner_config();
    cfg.objective = obj;
    const plan::Plan p = planner.plan(cfg);
    const plan::CostEstimate baseline =
        cost.estimate(default_config(), cfg.batch);
    double baseline_value = 0.0;
    switch (obj) {
      case plan::Objective::kCycles:
        baseline_value = static_cast<double>(baseline.makespan_cycles());
        break;
      case plan::Objective::kEnergy:
        baseline_value = baseline.total_energy();
        break;
      case plan::Objective::kEdp:
        baseline_value = baseline.edp();
        break;
    }
    EXPECT_LE(p.objective_value, baseline_value)
        << "objective " << plan::objective_name(obj);
  }
}

TEST(Planner, FloorsRespectAccuracyBudget) {
  // Every chosen hash length either meets the measured budget or is maxed
  // out at 1024 bits (the budget is infeasible for that layer).
  const auto model = nn::make_model("lenet5", 1);
  const plan::Planner planner(*model, nn::input_spec_for("lenet5").shape());
  const plan::Plan p = planner.plan(lenet_planner_config());
  ASSERT_EQ(p.floors.size(), p.hash_bits.size());
  for (const plan::LayerFloor& f : p.floors) {
    EXPECT_TRUE(f.measured_rel_error <= 0.5 ||
                f.hash_bits == static_cast<std::size_t>(hash::kMaxHashBits))
        << f.name << " k=" << f.hash_bits << " err=" << f.measured_rel_error;
  }
}

TEST(Planner, GuidedTuneMirrorsTunerShape) {
  const auto model = nn::make_model("lenet5", 1);
  const plan::Planner planner(*model, nn::input_spec_for("lenet5").shape());
  const core::TuneResult t = planner.guided_tune(lenet_planner_config());
  ASSERT_EQ(t.layers.size(), t.hash_bits.size());
  ASSERT_FALSE(t.layers.empty());
  for (std::size_t i = 0; i < t.layers.size(); ++i) {
    EXPECT_EQ(t.layers[i].chosen_bits, t.hash_bits[i]);
    EXPECT_EQ(t.layers[i].metric.size(),
              static_cast<std::size_t>(hash::kNumHashLengths));
    EXPECT_GE(t.hash_bits[i], 256u);
    EXPECT_LE(t.hash_bits[i], 1024u);
    EXPECT_EQ(t.hash_bits[i] % 256, 0u);
  }
}

// --- plan cache ------------------------------------------------------------

TEST(PlanCache, SameKeyHitsWithIdenticalBytes) {
  const auto model = nn::make_model("lenet5", 1);
  const plan::Planner planner(*model, nn::input_spec_for("lenet5").shape());
  const plan::PlannerConfig cfg = lenet_planner_config();
  const std::string key =
      plan::plan_cache_key(planner.cost_model().geometry().digest(), cfg);

  plan::PlanCache cache;
  std::size_t searches = 0;
  const auto make = [&] {
    ++searches;
    return planner.plan(cfg);
  };
  bool hit1 = true, hit2 = false;
  const plan::Plan first = cache.get_or_plan(key, make, &hit1);
  const plan::Plan second = cache.get_or_plan(key, make, &hit2);
  EXPECT_FALSE(hit1);
  EXPECT_TRUE(hit2);
  EXPECT_EQ(searches, 1u);  // the warm call skipped the search entirely
  EXPECT_EQ(plan::plan_to_json(first), plan::plan_to_json(second));
  const plan::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, AnyKeyFieldChangeMisses) {
  const auto model = nn::make_model("lenet5", 1);
  const plan::Planner planner(*model, nn::input_spec_for("lenet5").shape());
  const std::uint64_t digest = planner.cost_model().geometry().digest();
  const plan::PlannerConfig base = lenet_planner_config();
  const std::string base_key = plan::plan_cache_key(digest, base);

  plan::PlannerConfig batch = base;
  batch.batch = 32;
  plan::PlannerConfig objective = base;
  objective.objective = plan::Objective::kEnergy;
  plan::PlannerConfig rows = base;
  rows.row_candidates = {64};
  plan::PlannerConfig budget = base;
  budget.max_rel_error = 0.25;
  plan::PlannerConfig hash = base;
  hash.base.default_hash_bits = 512;
  plan::PlannerConfig cam = base;
  cam.base.cam_rows = 128;

  std::vector<std::string> keys = {base_key};
  for (const plan::PlannerConfig* cfg :
       {&batch, &objective, &rows, &budget, &hash, &cam})
    keys.push_back(plan::plan_cache_key(digest, *cfg));
  // Different geometry is a different key too.
  const auto vgg = nn::make_model("vgg11", 1);
  keys.push_back(plan::plan_cache_key(
      plan::extract_geometry(*vgg, nn::input_spec_for("vgg11").shape())
          .digest(),
      base));

  for (std::size_t i = 0; i < keys.size(); ++i)
    for (std::size_t j = i + 1; j < keys.size(); ++j)
      EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;

  // And a cold cache really misses on each distinct key.
  plan::PlanCache cache;
  bool hit = true;
  cache.get_or_plan(base_key, [&] { return planner.plan(base); }, &hit);
  EXPECT_FALSE(hit);
  cache.get_or_plan(keys[1], [&] { return planner.plan(batch); }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace deepcam
