// Golden-file regression tests for every report serializer: byte-exact
// comparison against checked-in goldens in tests/golden/, built from
// synthetic fixtures (hand-set fields, no simulation) so the bytes depend
// only on the serializers — not on optimization-level FP accumulation.
//
// The locale variants re-serialize under a comma-decimal locale (de_DE/fr_FR
// when installed, GTEST_SKIP otherwise): output must not change by a byte,
// proving the formatting is locale-proof.
//
// Regenerating after an intentional format change:
//   DEEPCAM_UPDATE_GOLDEN=1 ./build/test_golden_reports
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "api/report_io.hpp"
#include "api/runner.hpp"
#include "api/spec_io.hpp"
#include "core/report_io.hpp"
#include "plan/report_io.hpp"
#include "serve/report_io.hpp"
#include "sim/report_io.hpp"

#ifndef DEEPCAM_GOLDEN_DIR
#error "DEEPCAM_GOLDEN_DIR must be defined by the build"
#endif
#ifndef DEEPCAM_SPEC_DIR
#error "DEEPCAM_SPEC_DIR must be defined by the build"
#endif

namespace deepcam {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(DEEPCAM_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Compares `actual` against the checked-in golden; with
/// DEEPCAM_UPDATE_GOLDEN=1 rewrites the golden instead.
void expect_matches_golden(const std::string& actual,
                           const std::string& name) {
  const std::string path = golden_path(name);
  if (std::getenv("DEEPCAM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    return;
  }
  std::ifstream probe(path);
  ASSERT_TRUE(probe.good())
      << "missing golden " << path
      << " (regenerate with DEEPCAM_UPDATE_GOLDEN=1)";
  EXPECT_EQ(actual, read_file(path)) << "serializer output drifted from "
                                     << name;
}

/// Switches LC_ALL to a comma-decimal locale for the test body; returns
/// false when none is installed. Restores the previous locale on scope exit.
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() : saved_(std::setlocale(LC_ALL, nullptr)) {
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        active_ = true;
        break;
      }
    }
  }
  ~CommaLocaleGuard() { std::setlocale(LC_ALL, saved_.c_str()); }
  bool active() const { return active_; }

 private:
  std::string saved_;
  bool active_ = false;
};

/// Synthetic two-layer DeepCAM run report with hand-set fields.
core::RunReport make_run_report_fixture() {
  core::RunReport rep;
  core::LayerReport conv;
  conv.name = "conv1";
  conv.patches = 36;
  conv.kernels = 4;
  conv.context_len = 9;
  conv.hash_bits = 1024;
  conv.plan.passes = 1;
  conv.plan.searches = 4;
  conv.plan.rows_written = 36;
  conv.plan.utilization = 0.5625;
  conv.plan.dot_products = 144;
  conv.cycles = 1234;
  conv.cam_energy = 1.5e-9;
  conv.postproc_energy = 2.5e-10;
  conv.ctxgen_energy = 3.125e-11;
  rep.layers.push_back(conv);

  core::LayerReport fc;
  fc.name = "fc1";
  fc.patches = 1;
  fc.kernels = 5;
  fc.context_len = 144;
  fc.hash_bits = 512;
  fc.plan.passes = 1;
  fc.plan.searches = 5;
  fc.plan.rows_written = 1;
  fc.plan.utilization = 0.015625;
  fc.plan.dot_products = 5;
  fc.cycles = 68;
  fc.cam_energy = 4.75e-11;
  fc.postproc_energy = 8.0e-12;
  fc.ctxgen_energy = 0.0;
  rep.layers.push_back(fc);

  rep.peripheral_cycles = 77;
  rep.cam_area_um2 = 1792.0;
  return rep;
}

/// Synthetic three-row comparison report (one energy-unmodeled platform).
sim::ComparisonReport make_comparison_fixture() {
  sim::ComparisonReport report;

  sim::PlatformResult dc;
  dc.backend = "deepcam";
  dc.model = "lenet5";
  dc.batch = 2;
  dc.layers = {{"conv1", 172800, 4410.0, 4.375e-8},
               {"fc1", 61440, 2436.0, 4.1875e-9}};
  dc.extra_cycles = 154.0;
  dc.total_cycles = 7000.0;
  dc.total_energy_j = 4.79375e-8;
  dc.clock_hz = 300.0e6;
  dc.peak_efficiency = 0.7734375;
  report.rows.push_back(dc);

  sim::PlatformResult eye;
  eye.backend = "eyeriss";
  eye.model = "lenet5";
  eye.batch = 2;
  eye.layers = {{"conv1", 172800, 9002.0, 2.39330e-6},
                {"fc1", 61440, 15548.0, 3.3226e-6}};
  eye.total_cycles = 24550.0;
  eye.total_energy_j = 5.71590e-6;
  eye.clock_hz = 300.0e6;
  eye.peak_efficiency = 0.40625;
  report.rows.push_back(eye);

  sim::PlatformResult cpu;
  cpu.backend = "cpu-avx512";
  cpu.model = "lenet5";
  cpu.batch = 2;
  cpu.layers = {{"conv1", 172800, 69808.0, 0.0},
                {"fc1", 61440, 5504.0, 0.0}};
  cpu.total_cycles = 75312.0;
  cpu.total_energy_j = 0.0;
  cpu.energy_modeled = false;
  cpu.clock_hz = 3.2e9;
  cpu.peak_efficiency = 0.04296875;
  report.rows.push_back(cpu);

  return report;
}

/// Synthetic two-sample batch report: aggregate + per-sample all from
/// hand-set run-report fixtures (no simulation, no timing).
core::BatchReport make_batch_report_fixture() {
  core::BatchReport br;
  br.samples = 2;
  br.threads = 4;
  br.wall_seconds = 0.125;
  br.per_sample = {make_run_report_fixture(), make_run_report_fixture()};
  br.aggregate = make_run_report_fixture();
  // Hand-merged totals: every work/cost field doubled, geometry constant.
  for (auto& l : br.aggregate.layers) {
    l.patches *= 2;
    l.cycles *= 2;
    l.cam_energy *= 2.0;
    l.postproc_energy *= 2.0;
    l.ctxgen_energy *= 2.0;
    l.plan.passes *= 2;
    l.plan.searches *= 2;
    l.plan.rows_written *= 2;
    l.plan.dot_products *= 2;
  }
  br.aggregate.peripheral_cycles *= 2;
  return br;
}

/// Synthetic two-session server summary with hand-set fields.
serve::ServerSummary make_server_summary_fixture() {
  serve::ServerSummary s;
  s.elapsed_seconds = 2.5;
  s.workers = 4;
  s.queue_capacity = 256;
  s.max_queue_depth = 19;
  s.queue_depth_p50 = 3.0;
  s.queue_depth_p99 = 17.0;
  s.queue_depth_extract_p50 = 5.0;
  s.queue_depth_extract_p99 = 14.5;
  s.max_in_flight_batches = 4;
  s.unknown_session_rejected = 3;
  s.total_retries = 14;
  s.total_failovers = 9;
  s.total_hedges = 6;
  s.total_hedges_won = 2;
  s.total_hedges_wasted = 4;

  serve::SessionSummary lenet;
  lenet.name = "lenet5-k1024";
  lenet.accepted = 520;
  lenet.rejected = 24;
  lenet.shed = 9;
  lenet.completed = 520;
  lenet.errors = 2;
  lenet.expired = 5;
  lenet.downgraded = 0;
  lenet.batches = 80;
  lenet.mean_batch_size = 6.5;
  lenet.batch_size_p50 = 7.0;
  lenet.max_batch_size = 8;
  lenet.max_in_flight_batches = 3;
  lenet.latency_p50_ms = 4.25;
  lenet.latency_p95_ms = 9.5;
  lenet.latency_p99_ms = 12.75;
  lenet.latency_mean_ms = 5.0625;
  lenet.latency_max_ms = 15.5;
  lenet.queue_wait_p50_ms = 1.5;
  lenet.queue_wait_p99_ms = 6.25;
  lenet.throughput_rps = 208.0;
  s.sessions.push_back(lenet);

  serve::SessionSummary vgg;
  vgg.name = "vgg11-k256";
  vgg.accepted = 96;
  vgg.rejected = 0;
  vgg.shed = 0;
  vgg.completed = 96;
  vgg.errors = 0;
  vgg.expired = 0;
  vgg.downgraded = 12;
  vgg.batches = 32;
  vgg.mean_batch_size = 3.0;
  vgg.batch_size_p50 = 3.0;
  vgg.max_batch_size = 4;
  vgg.max_in_flight_batches = 2;
  vgg.latency_p50_ms = 31.25;
  vgg.latency_p95_ms = 55.5;
  vgg.latency_p99_ms = 60.125;
  vgg.latency_mean_ms = 33.5;
  vgg.latency_max_ms = 61.0;
  vgg.queue_wait_p50_ms = 2.0;
  vgg.queue_wait_p99_ms = 8.5;
  vgg.throughput_rps = 38.4;
  s.sessions.push_back(vgg);

  serve::ReplicaSummary r0;
  r0.session = "lenet5-k1024";
  r0.replica = 0;
  r0.health = "healthy";
  r0.batches = 61;
  r0.failures = 2;
  r0.transitions = 4;
  r0.canary_probes = 2;
  r0.quarantine_seconds = 0.125;
  r0.error_ewma = 0.0625;
  r0.latency_ewma_ms = 4.5;
  s.replicas.push_back(r0);

  serve::ReplicaSummary r1;
  r1.session = "lenet5-k1024";
  r1.replica = 1;
  r1.health = "quarantined";
  r1.batches = 19;
  r1.failures = 7;
  r1.transitions = 3;
  r1.canary_probes = 1;
  r1.quarantine_seconds = 0.5;
  r1.error_ewma = 0.875;
  r1.latency_ewma_ms = 6.25;
  s.replicas.push_back(r1);

  serve::ReplicaSummary rv;
  rv.session = "vgg11-k256";
  rv.replica = 0;
  rv.health = "degraded";
  rv.batches = 32;
  rv.failures = 1;
  rv.transitions = 1;
  rv.canary_probes = 0;
  rv.quarantine_seconds = 0.0;
  rv.error_ewma = 0.5625;
  rv.latency_ewma_ms = 33.25;
  s.replicas.push_back(rv);

  serve::SloClassSummary interactive;
  interactive.name = "interactive";
  interactive.accepted = 180;
  interactive.shed = 2;
  interactive.completed = 180;
  interactive.errors = 1;
  interactive.expired = 4;
  interactive.downgraded = 12;
  interactive.slo_met = 171;
  interactive.goodput_rps = 68.4;
  interactive.slack_p50_ms = 12.5;
  interactive.slack_p99_ms = 1.25;
  interactive.overrun_p50_ms = 3.5;
  interactive.overrun_max_ms = 9.75;
  s.classes.push_back(interactive);

  serve::SloClassSummary standard;
  standard.name = "standard";
  standard.accepted = 400;
  standard.shed = 3;
  standard.completed = 400;
  standard.errors = 1;
  standard.expired = 1;
  standard.downgraded = 0;
  standard.slo_met = 390;
  standard.goodput_rps = 156.0;
  standard.slack_p50_ms = 40.0;
  standard.slack_p99_ms = 6.5;
  standard.overrun_p50_ms = 1.0;
  standard.overrun_max_ms = 2.25;
  s.classes.push_back(standard);

  serve::SloClassSummary batch;
  batch.name = "batch";
  batch.accepted = 36;
  batch.shed = 4;
  batch.completed = 36;
  batch.errors = 0;
  batch.expired = 0;
  batch.downgraded = 0;
  batch.slo_met = 36;
  batch.goodput_rps = 14.4;
  batch.slack_p50_ms = 250.0;
  batch.slack_p99_ms = 75.0;
  s.classes.push_back(batch);
  return s;
}

/// Synthetic VHL tuning result (hand-set metrics, no simulation).
core::TuneResult make_tune_result_fixture() {
  core::TuneResult t;
  core::LayerSensitivity conv;
  conv.layer_name = "conv1";
  conv.context_len = 9;
  conv.metric = {0.5, 0.25, 0.125, 0.0625};
  conv.chosen_bits = 512;
  t.layers.push_back(conv);
  core::LayerSensitivity fc;
  fc.layer_name = "fc1";
  fc.context_len = 144;
  fc.metric = {0.75, 0.5, 0.375, 0.25};
  fc.chosen_bits = 1024;
  t.layers.push_back(fc);
  t.hash_bits = {512, 1024};
  return t;
}

/// Synthetic load-generator report (counters + a hand-fed latency
/// histogram; small-N percentiles are exact, so bytes are stable).
serve::LoadReport make_load_report_fixture() {
  serve::LoadReport load;
  load.sent = 94;
  load.rejected = 2;
  load.shed = 1;
  load.errors = 1;
  load.expired = 3;
  load.slo_met = 88;
  load.duration_seconds = 0.25;
  load.offered_rps = 400.0;
  load.achieved_rps = 376.0;
  load.goodput_rps = 352.0;
  for (const double s : {0.004, 0.0095, 0.01275, 0.0155, 0.002})
    load.latency.add(s);
  return load;
}

deepcam::Outcome make_offline_outcome_fixture() {
  return deepcam::Outcome{"golden-offline", deepcam::Mode::kOffline,
                          deepcam::OfflineOutcome{make_batch_report_fixture()}};
}

deepcam::Outcome make_compare_outcome_fixture() {
  sim::ComparisonReport report = make_comparison_fixture();
  report.vhl_tuning.push_back(make_tune_result_fixture());
  return deepcam::Outcome{"golden-compare", deepcam::Mode::kCompare,
                          deepcam::CompareOutcome{std::move(report)}};
}

deepcam::Outcome make_serve_outcome_fixture() {
  deepcam::ServeOutcome out;
  out.summary = make_server_summary_fixture();
  out.load = make_load_report_fixture();
  out.trace_events = 96;
  out.sessions = {"lenet5-k1024", "vgg11-k256"};
  return deepcam::Outcome{"golden-serve", deepcam::Mode::kServe,
                          std::move(out)};
}

deepcam::Outcome make_tune_outcome_fixture() {
  deepcam::TuneOutcome out;
  out.entries.push_back(
      deepcam::TuneOutcome::Entry{"lenet5", make_tune_result_fixture()});
  return deepcam::Outcome{"golden-tune", deepcam::Mode::kTune,
                          std::move(out)};
}

/// Synthetic plan (hand-set fields, dyadic fractions so the bytes are
/// format-stable) covering every field plan_json emits.
plan::Plan make_plan_fixture() {
  plan::Plan p;
  p.model_name = "lenet5";
  p.geometry_digest = 0x123456789abcdef0ULL;
  p.objective = plan::Objective::kCycles;
  p.batch = 8;
  p.cam_rows = 128;
  p.dataflow = core::Dataflow::kWeightStationary;
  p.micro_batch = 8;
  p.threads = 4;
  p.hash_bits = {256, 1024};
  p.floors.push_back(plan::LayerFloor{"conv1", 256, 0.125, 0.1171875});
  p.floors.push_back(plan::LayerFloor{"fc1", 1024, 0.5, 0.4375});

  plan::LayerCost conv;
  conv.name = "conv1";
  conv.patches = 36;
  conv.kernels = 4;
  conv.context_len = 9;
  conv.hash_bits = 256;
  conv.plan.passes = 1;
  conv.plan.searches = 36;
  conv.plan.rows_written = 4;
  conv.plan.utilization = 0.03125;
  conv.plan.dot_products = 144;
  conv.cycles = 160;
  conv.cam_energy = 1.5e-9;
  conv.postproc_energy = 2.5e-10;
  conv.ctxgen_energy = 0.0;
  p.cost.layers.push_back(conv);

  plan::LayerCost fc;
  fc.name = "fc1";
  fc.patches = 1;
  fc.kernels = 5;
  fc.context_len = 144;
  fc.hash_bits = 1024;
  fc.plan.passes = 1;
  fc.plan.searches = 1;
  fc.plan.rows_written = 5;
  fc.plan.utilization = 0.0390625;
  fc.plan.dot_products = 5;
  fc.cycles = 34;
  fc.cam_energy = 4.75e-11;
  fc.postproc_energy = 8.0e-12;
  fc.ctxgen_energy = 3.125e-11;
  p.cost.layers.push_back(fc);

  p.cost.peripheral_cycles = 77;
  p.cost.batch = 8;
  p.cost.micro_batch = 8;
  p.cost.threads = 4;
  p.objective_value = static_cast<double>(p.cost.makespan_cycles());
  p.configs_evaluated = 96;
  return p;
}

deepcam::Outcome make_plan_outcome_fixture() {
  deepcam::PlanOutcome out;
  deepcam::PlanOutcome::Entry entry;
  entry.workload = "lenet5";
  entry.plan = make_plan_fixture();
  entry.cache_hit = true;
  entry.validated = true;
  entry.measured_cycles = 2168.0;
  entry.cycle_rel_error = 0.0;
  out.entries.push_back(std::move(entry));
  out.cache = plan::PlanCacheStats{1, 1, 1};
  return deepcam::Outcome{"golden-plan", deepcam::Mode::kPlan,
                          std::move(out)};
}

TEST(GoldenReports, RunReportCsv) {
  expect_matches_golden(core::report_to_csv(make_run_report_fixture()),
                        "run_report.csv");
}

TEST(GoldenReports, RunReportSummary) {
  expect_matches_golden(core::report_summary(make_run_report_fixture()),
                        "run_report_summary.txt");
}

TEST(GoldenReports, ComparisonCsv) {
  expect_matches_golden(sim::comparison_to_csv(make_comparison_fixture()),
                        "comparison.csv");
}

TEST(GoldenReports, ComparisonLayersCsv) {
  expect_matches_golden(
      sim::comparison_layers_to_csv(make_comparison_fixture()),
      "comparison_layers.csv");
}

TEST(GoldenReports, ComparisonSummary) {
  expect_matches_golden(sim::comparison_summary(make_comparison_fixture()),
                        "comparison_summary.txt");
}

TEST(GoldenReports, BatchReportJson) {
  expect_matches_golden(
      core::batch_report_to_json(make_batch_report_fixture(),
                                 /*include_per_sample=*/true),
      "batch_report.json");
}

TEST(GoldenReports, ServerSummaryJson) {
  expect_matches_golden(
      serve::server_summary_to_json(make_server_summary_fixture()),
      "server_summary.json");
}

TEST(GoldenReports, ServerSummaryText) {
  expect_matches_golden(
      serve::server_summary_text(make_server_summary_fixture()),
      "server_summary.txt");
}

// --- facade outcome serializers (api/report_io) ---------------------------

TEST(GoldenReports, OutcomeOfflineJson) {
  expect_matches_golden(
      outcome_to_json(make_offline_outcome_fixture(), /*per_sample=*/true),
      "outcome_offline.json");
}

TEST(GoldenReports, OutcomeCompareJson) {
  expect_matches_golden(outcome_to_json(make_compare_outcome_fixture()),
                        "outcome_compare.json");
}

TEST(GoldenReports, OutcomeServeJson) {
  expect_matches_golden(outcome_to_json(make_serve_outcome_fixture()),
                        "outcome_serve.json");
}

TEST(GoldenReports, OutcomeTuneJson) {
  expect_matches_golden(outcome_to_json(make_tune_outcome_fixture()),
                        "outcome_tune.json");
}

TEST(GoldenReports, OutcomePlanJson) {
  expect_matches_golden(outcome_to_json(make_plan_outcome_fixture()),
                        "outcome_plan.json");
}

TEST(GoldenReports, OutcomePlanText) {
  expect_matches_golden(outcome_text(make_plan_outcome_fixture()),
                        "outcome_plan.txt");
}

TEST(GoldenReports, OutcomeOfflineText) {
  expect_matches_golden(outcome_text(make_offline_outcome_fixture()),
                        "outcome_offline.txt");
}

TEST(GoldenReports, OutcomeServeText) {
  expect_matches_golden(outcome_text(make_serve_outcome_fixture()),
                        "outcome_serve.txt");
}

// --- end-to-end trace golden ----------------------------------------------

TEST(GoldenReports, VirtualClockServeTraceIsByteIdenticalAndPinned) {
  // The observability acceptance bar: a pump-mode serve replay on the
  // VirtualClock (specs/serve_trace.json, chaos + retries included) must
  // export the same trace bytes on every run, on every machine — all span
  // timestamps come from the virtual clock and the export order is
  // canonical. Two live runs prove replay stability; the golden pins the
  // bytes across commits.
  Spec spec = spec_from_file(std::string(DEEPCAM_SPEC_DIR) +
                             "/serve_trace.json");
  ASSERT_TRUE(spec.serve.virtual_time);
  spec.outputs.text = false;
  const std::string trace1 = "serve_trace_run1.json";
  const std::string trace2 = "serve_trace_run2.json";
  const std::string prom1 = "serve_trace_run1.prom";
  const std::string prom2 = "serve_trace_run2.prom";
  spec.outputs.trace_path = trace1;
  spec.outputs.metrics_path = prom1;
  Runner().run(spec);
  spec.outputs.trace_path = trace2;
  spec.outputs.metrics_path = prom2;
  Runner().run(spec);

  const std::string t1 = read_file(trace1);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, read_file(trace2)) << "trace drifted between replays";
  EXPECT_EQ(read_file(prom1), read_file(prom2))
      << "metrics drifted between replays";
  expect_matches_golden(t1, "serve_trace_perfetto.json");
  expect_matches_golden(read_file(prom1), "serve_trace_metrics.prom");
  for (const std::string& p : {trace1, trace2, prom1, prom2})
    std::remove(p.c_str());
}

// --- spec canonical form ---------------------------------------------------

TEST(GoldenReports, QuickstartSpecCanonicalJson) {
  // Pins loader + emitter + the committed spec file together: if any of
  // the three drifts, the canonical form of specs/quickstart.json changes.
  expect_matches_golden(
      spec_to_json(
          spec_from_file(std::string(DEEPCAM_SPEC_DIR) + "/quickstart.json")),
      "spec_quickstart_canonical.json");
}

TEST(GoldenReports, OutputIsLocaleProof) {
  // Serialize everything once in the default locale, then again under a
  // comma-decimal locale: the bytes must be identical (and equal to the
  // goldens, which the tests above already pinned).
  const auto rep = make_run_report_fixture();
  const auto cmp = make_comparison_fixture();
  const auto batch = make_batch_report_fixture();
  const auto srv = make_server_summary_fixture();
  const auto serialize_everything = [&] {
    return core::report_to_csv(rep) + core::report_summary(rep) +
           sim::comparison_to_csv(cmp) + sim::comparison_layers_to_csv(cmp) +
           sim::comparison_summary(cmp) +
           core::batch_report_to_json(batch, true) +
           serve::server_summary_to_json(srv) +
           serve::server_summary_text(srv) +
           outcome_to_json(make_compare_outcome_fixture()) +
           outcome_to_json(make_serve_outcome_fixture()) +
           outcome_to_json(make_plan_outcome_fixture()) +
           outcome_text(make_serve_outcome_fixture()) +
           outcome_text(make_tune_outcome_fixture()) +
           outcome_text(make_plan_outcome_fixture()) +
           spec_to_json(spec_from_file(std::string(DEEPCAM_SPEC_DIR) +
                                       "/serve_demo.json"));
  };
  const std::string before = serialize_everything();

  CommaLocaleGuard guard;
  if (!guard.active())
    GTEST_SKIP() << "no comma-decimal locale installed";
  // Sanity: the locale really does use a comma decimal point for printf.
  char probe[16];
  std::snprintf(probe, sizeof probe, "%.1f", 0.5);
  ASSERT_STREQ(probe, "0,5") << "locale did not switch";

  const std::string after = serialize_everything();
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace deepcam
