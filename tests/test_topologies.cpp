#include "nn/topologies.hpp"

#include <gtest/gtest.h>

#include "nn/workload.hpp"

namespace deepcam::nn {
namespace {

Shape input_shape(const std::string& name) {
  const InputSpec spec = input_spec_for(name);
  return {1, spec.channels, spec.height, spec.width};
}

TEST(Topologies, LeNet5ShapesAndOutput) {
  auto m = make_lenet5(1);
  Tensor in(input_shape("lenet5"));
  Tensor out = m->forward(in, false);
  EXPECT_TRUE((out.shape() == Shape{1, 10, 1, 1}));
  EXPECT_TRUE(m->is_sequential());
  // Classic LeNet5 parameter count (valid conv variant): conv1 156,
  // conv2 2416, fc1 30840, fc2 10164, fc3 850.
  EXPECT_EQ(m->param_count(), 156u + 2416 + 30840 + 10164 + 850);
}

TEST(Topologies, Vgg11ShapesAndWorkload) {
  auto m = make_vgg11(2, 10);
  Tensor in(input_shape("vgg11"));
  Tensor out = m->forward(in, false);
  EXPECT_TRUE((out.shape() == Shape{1, 10, 1, 1}));
  const auto work = extract_gemm_workload(*m, input_shape("vgg11"));
  // 8 convs + 2 FCs.
  EXPECT_EQ(work.size(), 10u);
  // First conv: 32x32 patches of len 27, 64 filters.
  EXPECT_EQ(work[0].m, 1024u);
  EXPECT_EQ(work[0].n, 64u);
  EXPECT_EQ(work[0].k, 27u);
}

TEST(Topologies, Vgg16HasThirteenConvs) {
  auto m = make_vgg16(3, 100);
  const auto work = extract_gemm_workload(*m, input_shape("vgg16"));
  EXPECT_EQ(work.size(), 13u + 2u);
  Tensor in(input_shape("vgg16"));
  Tensor out = m->forward(in, false);
  EXPECT_EQ(out.shape().c, 100u);
}

TEST(Topologies, ResNet18StructureAndForward) {
  auto m = make_resnet18(4, 100);
  EXPECT_FALSE(m->is_sequential());  // has skip connections
  Tensor in(input_shape("resnet18"));
  Tensor out = m->forward(in, false);
  EXPECT_TRUE((out.shape() == Shape{1, 100, 1, 1}));
  const auto work = extract_gemm_workload(*m, input_shape("resnet18"));
  // Stem + 16 block convs + 3 downsample 1x1 convs + 1 FC = 21.
  EXPECT_EQ(work.size(), 21u);
}

TEST(Topologies, ResNet18MacCount) {
  auto m = make_resnet18(5, 100);
  const std::size_t macs = total_macs(*m, input_shape("resnet18"));
  // CIFAR ResNet18 is ~0.5 GMACs; sanity band.
  EXPECT_GT(macs, 400u * 1000 * 1000);
  EXPECT_LT(macs, 700u * 1000 * 1000);
}

TEST(Topologies, Vgg11MacCount) {
  auto m = make_vgg11(6, 10);
  const std::size_t macs = total_macs(*m, input_shape("vgg11"));
  // CIFAR VGG11 is ~0.15 GMACs.
  EXPECT_GT(macs, 120u * 1000 * 1000);
  EXPECT_LT(macs, 200u * 1000 * 1000);
}

TEST(Topologies, MakeModelDispatch) {
  for (const auto* name : {"lenet5", "vgg11", "vgg16", "resnet18"}) {
    auto m = make_model(name, 7);
    EXPECT_EQ(m->name(), name);
  }
  EXPECT_THROW(make_model("alexnet", 7), Error);
  EXPECT_THROW(input_spec_for("alexnet"), Error);
}

TEST(Topologies, DeterministicWeights) {
  auto a = make_lenet5(42);
  auto b = make_lenet5(42);
  Tensor in(input_shape("lenet5"));
  in.fill(0.3f);
  Tensor oa = a->forward(in, false);
  Tensor ob = b->forward(in, false);
  for (std::size_t i = 0; i < oa.numel(); ++i) EXPECT_EQ(oa[i], ob[i]);
  auto c = make_lenet5(43);
  Tensor oc = c->forward(in, false);
  bool any_diff = false;
  for (std::size_t i = 0; i < oa.numel(); ++i)
    if (oa[i] != oc[i]) any_diff = true;
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace deepcam::nn
