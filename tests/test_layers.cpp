#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"

namespace deepcam::nn {
namespace {

// ---------------------------------------------------------------- Conv2D --

TEST(Conv2D, KnownKernelConvolution) {
  Conv2D conv("c", ConvSpec{1, 1, 2, 2, 1, 0}, 1);
  conv.weights() = {1.0f, 0.0f, 0.0f, 1.0f};  // trace of 2x2 window
  conv.bias() = {0.5f};
  Tensor in({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) in[i] = static_cast<float>(i);
  Tensor out = conv.forward(in, false);
  EXPECT_TRUE((out.shape() == Shape{1, 1, 2, 2}));
  // Window at (0,0): 0 + 4 + bias.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 4.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 4.0f + 8.0f + 0.5f);
}

TEST(Conv2D, PaddingKeepsSpatialSize) {
  Conv2D conv("c", ConvSpec{3, 8, 3, 3, 1, 1}, 2);
  Tensor in({1, 3, 5, 5});
  Tensor out = conv.forward(in, false);
  EXPECT_TRUE((out.shape() == Shape{1, 8, 5, 5}));
}

TEST(Conv2D, StrideDownsamples) {
  Conv2D conv("c", ConvSpec{1, 4, 1, 1, 2, 0}, 3);
  Tensor in({1, 1, 8, 8});
  Tensor out = conv.forward(in, false);
  EXPECT_TRUE((out.shape() == Shape{1, 4, 4, 4}));
}

TEST(Conv2D, ChannelMismatchThrows) {
  Conv2D conv("c", ConvSpec{2, 1, 3, 3, 1, 0}, 4);
  Tensor in({1, 3, 5, 5});
  EXPECT_THROW(conv.forward(in, false), Error);
}

TEST(Conv2D, GradientCheckWeights) {
  // Numerical gradient check on a tiny conv.
  Conv2D conv("c", ConvSpec{1, 2, 2, 2, 1, 0}, 5);
  Rng rng(6);
  Tensor in({1, 1, 3, 3});
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(rng.gaussian());
  // Loss = sum(out); dLoss/dout = 1.
  Tensor out = conv.forward(in, true);
  Tensor gout(out.shape());
  gout.fill(1.0f);
  conv.backward(gout);

  // Finite difference on weight[0] of kernel 0: perturb and re-run.
  const float eps = 1e-3f;
  auto loss_with_w0 = [&](float w0) {
    Conv2D c2("c", ConvSpec{1, 2, 2, 2, 1, 0}, 5);
    c2.weights() = conv.weights();
    c2.bias() = conv.bias();
    c2.weights()[0] = w0;
    Tensor o = c2.forward(in, false);
    double s = 0.0;
    for (std::size_t i = 0; i < o.numel(); ++i) s += o[i];
    return s;
  };
  const float w0 = conv.weights()[0];
  const double num_grad =
      (loss_with_w0(w0 + eps) - loss_with_w0(w0 - eps)) / (2.0 * eps);
  // Recover analytic grad: update with lr=1 changes w by -grad.
  Conv2D ref("c", ConvSpec{1, 2, 2, 2, 1, 0}, 5);
  const float before = conv.weights()[0];
  conv.update(1.0f);
  const double ana_grad = double(before) - conv.weights()[0];
  (void)ref;
  EXPECT_NEAR(ana_grad, num_grad, 1e-2);
}

TEST(Conv2D, BackwardInputGradientShape) {
  Conv2D conv("c", ConvSpec{2, 3, 3, 3, 1, 1}, 7);
  Tensor in({1, 2, 4, 4});
  Tensor out = conv.forward(in, true);
  Tensor gout(out.shape());
  gout.fill(0.1f);
  Tensor gin = conv.backward(gout);
  EXPECT_TRUE(gin.shape() == in.shape());
}

TEST(Conv2D, BackwardWithoutForwardThrows) {
  Conv2D conv("c", ConvSpec{1, 1, 2, 2, 1, 0}, 8);
  Tensor g({1, 1, 2, 2});
  EXPECT_THROW(conv.backward(g), Error);
}

// ---------------------------------------------------------------- Linear --

TEST(Linear, KnownMatrixVector) {
  Linear fc("f", 3, 2, 1);
  fc.weights() = {1, 2, 3, 4, 5, 6};  // row-major [2][3]
  fc.bias() = {0.0f, 1.0f};
  Tensor in({1, 3, 1, 1});
  in[0] = 1.0f;
  in[1] = 0.0f;
  in[2] = -1.0f;
  Tensor out = fc.forward(in, false);
  EXPECT_FLOAT_EQ(out[0], 1.0f - 3.0f);
  EXPECT_FLOAT_EQ(out[1], 4.0f - 6.0f + 1.0f);
}

TEST(Linear, AcceptsSpatialInputAsFlattened) {
  Linear fc("f", 8, 2, 2);
  Tensor in({1, 2, 2, 2});
  EXPECT_NO_THROW(fc.forward(in, false));
  Tensor wrong({1, 3, 2, 2});
  EXPECT_THROW(fc.forward(wrong, false), Error);
}

TEST(Linear, GradientCheck) {
  Linear fc("f", 4, 3, 3);
  Rng rng(9);
  Tensor in({1, 4, 1, 1});
  for (std::size_t i = 0; i < 4; ++i)
    in[i] = static_cast<float>(rng.gaussian());
  Tensor out = fc.forward(in, true);
  Tensor gout(out.shape());
  gout.fill(1.0f);
  Tensor gin = fc.backward(gout);
  // dLoss/dx_i = sum_o W[o][i].
  for (std::size_t i = 0; i < 4; ++i) {
    float expect = 0.0f;
    for (std::size_t o = 0; o < 3; ++o) expect += fc.weights()[o * 4 + i];
    EXPECT_NEAR(gin[i], expect, 1e-5);
  }
  // dLoss/dW[o][i] = x_i.
  const float w00 = fc.weights()[0];
  fc.update(1.0f);
  EXPECT_NEAR(w00 - fc.weights()[0], in[0], 1e-5);
}

TEST(Linear, BatchForward) {
  Linear fc("f", 2, 1, 4);
  fc.weights() = {1.0f, 1.0f};
  fc.bias() = {0.0f};
  Tensor in({3, 2, 1, 1});
  for (std::size_t i = 0; i < 6; ++i) in[i] = static_cast<float>(i);
  Tensor out = fc.forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0, 0, 0), 9.0f);
}

// ------------------------------------------------------------- Pointwise --

TEST(ReLU, ClampsNegatives) {
  ReLU r("r");
  Tensor in({1, 1, 1, 4});
  in[0] = -1.0f;
  in[1] = 0.0f;
  in[2] = 2.0f;
  in[3] = -0.5f;
  Tensor out = r.forward(in, false);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 2.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU r("r");
  Tensor in({1, 1, 1, 3});
  in[0] = -1.0f;
  in[1] = 3.0f;
  in[2] = 0.0f;
  r.forward(in, true);
  Tensor g({1, 1, 1, 3});
  g.fill(1.0f);
  Tensor gin = r.backward(g);
  EXPECT_EQ(gin[0], 0.0f);
  EXPECT_EQ(gin[1], 1.0f);
  EXPECT_EQ(gin[2], 0.0f);  // ReLU'(0) = 0 convention
}

TEST(Flatten, RoundTrip) {
  Flatten f("f");
  Tensor in({2, 3, 4, 4});
  Tensor out = f.forward(in, true);
  EXPECT_TRUE((out.shape() == Shape{2, 48, 1, 1}));
  Tensor g(out.shape());
  Tensor gin = f.backward(g);
  EXPECT_TRUE(gin.shape() == in.shape());
}

TEST(Softmax, NormalizesToOne) {
  Softmax s("s");
  Tensor in({2, 4, 1, 1});
  for (std::size_t i = 0; i < 8; ++i) in[i] = static_cast<float>(i) * 0.3f;
  Tensor out = s.forward(in, false);
  for (std::size_t n = 0; n < 2; ++n) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 4; ++c) sum += out.at(n, c, 0, 0);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Softmax, LargeLogitsStable) {
  Softmax s("s");
  Tensor in({1, 2, 1, 1});
  in[0] = 1000.0f;
  in[1] = 999.0f;
  Tensor out = s.forward(in, false);
  EXPECT_TRUE(std::isfinite(out[0]));
  EXPECT_GT(out[0], out[1]);
}

TEST(BatchNorm, AffinePerChannel) {
  BatchNorm bn("bn", 2, 1);
  bn.gamma() = {2.0f, 0.5f};
  bn.beta() = {1.0f, -1.0f};
  Tensor in({1, 2, 1, 2});
  in.at(0, 0, 0, 0) = 3.0f;
  in.at(0, 1, 0, 1) = 4.0f;
  Tensor out = bn.forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 7.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 1), 1.0f);
}

TEST(Add, ElementwiseSumAndShapeCheck) {
  Add add("a");
  Tensor a({1, 1, 2, 2}), b({1, 1, 2, 2});
  a.fill(1.0f);
  b.fill(2.0f);
  Tensor out = add.forward2(a, b);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], 3.0f);
  Tensor c({1, 1, 2, 3});
  EXPECT_THROW(add.forward2(a, c), Error);
  EXPECT_THROW(add.forward(a, false), Error);  // single-input use forbidden
}

// --------------------------------------------------------------- Pooling --

TEST(MaxPool, SelectsWindowMax) {
  MaxPool p("p", 2, 2);
  Tensor in({1, 1, 4, 4});
  for (std::size_t i = 0; i < 16; ++i) in[i] = static_cast<float>(i);
  Tensor out = p.forward(in, false);
  EXPECT_TRUE((out.shape() == Shape{1, 1, 2, 2}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 5.0f);
  EXPECT_EQ(out.at(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool p("p", 2, 2);
  Tensor in({1, 1, 2, 2});
  in[0] = 1.0f;
  in[1] = 5.0f;
  in[2] = 2.0f;
  in[3] = 0.0f;
  p.forward(in, true);
  Tensor g({1, 1, 1, 1});
  g[0] = 3.0f;
  Tensor gin = p.backward(g);
  EXPECT_EQ(gin[0], 0.0f);
  EXPECT_EQ(gin[1], 3.0f);
  EXPECT_EQ(gin[2], 0.0f);
}

TEST(AvgPool, Averages) {
  AvgPool p("p", 2, 2);
  Tensor in({1, 1, 2, 2});
  in[0] = 1.0f;
  in[1] = 2.0f;
  in[2] = 3.0f;
  in[3] = 6.0f;
  Tensor out = p.forward(in, false);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(LayerKindNames, AllDistinct) {
  EXPECT_STREQ(layer_kind_name(LayerKind::kConv2D), "Conv2D");
  EXPECT_STREQ(layer_kind_name(LayerKind::kLinear), "Linear");
  EXPECT_STREQ(layer_kind_name(LayerKind::kAdd), "Add");
}

}  // namespace
}  // namespace deepcam::nn
