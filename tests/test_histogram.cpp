// Histogram unit tests: exact small-N percentiles (nearest-rank), the
// empty/single/duplicate edge cases ServerMetrics depends on, bucket
// fallback behavior past the exact cap, and geometry-checked merging.
#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace deepcam {
namespace {

TEST(Histogram, EmptyIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(100.0), 0.0);
}

TEST(Histogram, SingleValueEveryPercentile) {
  Histogram h;
  h.add(0.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_TRUE(h.exact());
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0})
    EXPECT_EQ(h.percentile(p), 0.25) << "p=" << p;
  EXPECT_EQ(h.min(), 0.25);
  EXPECT_EQ(h.max(), 0.25);
  EXPECT_EQ(h.mean(), 0.25);
}

TEST(Histogram, DuplicateValuesStayExact) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(2.0);
  for (const double p : {0.0, 10.0, 50.0, 90.0, 100.0})
    EXPECT_EQ(h.percentile(p), 2.0) << "p=" << p;
  EXPECT_EQ(h.mean(), 2.0);
}

TEST(Histogram, ExactNearestRankSmallN) {
  // Values 1..10 (permuted): nearest-rank percentiles are exact order
  // statistics regardless of insertion order.
  Histogram h;
  for (const double v : {7.0, 1.0, 10.0, 3.0, 5.0, 9.0, 2.0, 8.0, 4.0, 6.0})
    h.add(v);
  ASSERT_TRUE(h.exact());
  EXPECT_EQ(h.percentile(10.0), 1.0);   // ceil(0.1*10)=1st
  EXPECT_EQ(h.percentile(50.0), 5.0);   // ceil(0.5*10)=5th
  EXPECT_EQ(h.percentile(51.0), 6.0);   // ceil(0.51*10)=6th
  EXPECT_EQ(h.percentile(90.0), 9.0);
  EXPECT_EQ(h.percentile(99.0), 10.0);
  EXPECT_EQ(h.percentile(100.0), 10.0);
}

TEST(Histogram, OutOfRangeValuesClampIntoEdgeBuckets) {
  Histogram h(1e-3, 1.0, 8, /*exact_cap=*/2);
  h.add(1e-9);   // below min bucket
  h.add(100.0);  // above max bucket
  h.add(0.5);    // past the cap -> bucket mode
  EXPECT_FALSE(h.exact());
  EXPECT_EQ(h.count(), 3u);
  // Percentiles stay within the observed range even in bucket mode.
  EXPECT_GE(h.percentile(50.0), h.min());
  EXPECT_LE(h.percentile(50.0), h.max());
  EXPECT_EQ(h.percentile(0.0), 1e-9);
  EXPECT_EQ(h.percentile(100.0), 100.0);
}

TEST(Histogram, BucketModeApproximatesWithinBucketResolution) {
  // Past the exact cap, a percentile must land inside the right bucket:
  // check against the exact order statistic within one geometric step.
  Histogram h(1e-4, 10.0, 128, /*exact_cap=*/16);
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) {
    const double v = std::exp(rng.uniform(std::log(1e-3), std::log(1.0)));
    values.push_back(v);
    h.add(v);
  }
  ASSERT_FALSE(h.exact());
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 95.0, 99.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    const double exact = values[rank - 1];
    const double approx = h.percentile(p);
    // Geometric bucket width for this config is exp(ln(1e5)/128) ~ 1.094.
    EXPECT_GT(approx, exact / 1.2) << "p=" << p;
    EXPECT_LT(approx, exact * 1.2) << "p=" << p;
  }
}

TEST(Histogram, MonotoneInP) {
  Histogram h(1e-6, 1e2, 64, /*exact_cap=*/8);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform(0.001, 10.0));
  double prev = h.percentile(0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = h.percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(Histogram, MergeCombinesExactSets) {
  Histogram a, b;
  for (const double v : {1.0, 3.0, 5.0}) a.add(v);
  for (const double v : {2.0, 4.0, 6.0}) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 6u);
  ASSERT_TRUE(a.exact());
  EXPECT_EQ(a.percentile(50.0), 3.0);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 6.0);
  EXPECT_EQ(a.sum(), 21.0);
}

TEST(Histogram, MergeIntoEmptyAndFromEmpty) {
  Histogram a, b;
  b.add(2.0);
  a.merge(b);  // empty <- non-empty
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.percentile(50.0), 2.0);
  Histogram c;
  a.merge(c);  // non-empty <- empty is a no-op
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.max(), 2.0);
}

TEST(Histogram, MergeThenPercentileMatchesSingleHistogram) {
  // Percentiles of a merged pair must equal percentiles of one histogram
  // fed the union multiset — in exact mode bit-for-bit, in bucket mode
  // because the bucket counts are summed identically.
  Rng rng(41);
  for (const std::size_t cap : {std::size_t{4096}, std::size_t{8}}) {
    Histogram a(1e-6, 1e3, 96, cap), b(1e-6, 1e3, 96, cap);
    Histogram whole(1e-6, 1e3, 96, cap);
    for (int i = 0; i < 100; ++i) {
      const double v = rng.uniform(0.001, 50.0);
      (i % 2 == 0 ? a : b).add(v);
      whole.add(v);
    }
    a.merge(b);
    ASSERT_EQ(a.count(), whole.count());
    EXPECT_EQ(a.exact(), whole.exact()) << "cap=" << cap;
    for (const double p : {0.0, 10.0, 50.0, 95.0, 99.0, 100.0})
      EXPECT_EQ(a.percentile(p), whole.percentile(p))
          << "cap=" << cap << " p=" << p;
    // Sums agree up to fp addition order (merge adds b's total at once).
    EXPECT_NEAR(a.sum(), whole.sum(), 1e-9 * whole.sum());
  }
}

TEST(Histogram, MergePastExactCapDropsExactness) {
  Histogram a(1e-3, 1.0, 32, /*exact_cap=*/4);
  Histogram b(1e-3, 1.0, 32, /*exact_cap=*/4);
  for (const double v : {0.1, 0.2, 0.3}) a.add(v);
  for (const double v : {0.4, 0.5, 0.6}) b.add(v);
  ASSERT_TRUE(a.exact());
  ASSERT_TRUE(b.exact());
  a.merge(b);  // 6 samples > cap of 4
  EXPECT_FALSE(a.exact());
  EXPECT_EQ(a.count(), 6u);
  // Bucketed percentiles still honor the observed range and stay monotone.
  EXPECT_GE(a.percentile(50.0), a.min());
  EXPECT_LE(a.percentile(50.0), a.max());
  EXPECT_LE(a.percentile(50.0), a.percentile(99.0));
}

TEST(Histogram, ExactCapCrossoverStaysNearExactAnswer) {
  // The sample that pushes count past exact_cap flips percentile() from
  // nearest-rank to bucket interpolation. The answers may move, but only
  // within one geometric bucket of the true order statistic.
  const std::size_t cap = 16;
  Histogram h(1e-3, 10.0, 256, cap);
  std::vector<double> values;
  Rng rng(7);
  for (std::size_t i = 0; i < cap; ++i) {
    const double v = rng.uniform(0.01, 5.0);
    values.push_back(v);
    h.add(v);
  }
  ASSERT_TRUE(h.exact());  // exactly at the cap: still exact
  std::sort(values.begin(), values.end());
  EXPECT_EQ(h.percentile(50.0), values[7]);  // ceil(0.5*16)=8th

  const double extra = 0.02;
  values.insert(std::lower_bound(values.begin(), values.end(), extra), extra);
  h.add(extra);  // cap+1: raw set dropped for good
  ASSERT_FALSE(h.exact());
  // Bucket width for this config is exp(ln(1e4)/256) ~ 1.037.
  for (const double p : {50.0, 90.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    const double exact = values[rank - 1];
    EXPECT_GT(h.percentile(p), exact / 1.1) << "p=" << p;
    EXPECT_LT(h.percentile(p), exact * 1.1) << "p=" << p;
  }
  // p=0/100 remain exact in every mode: they return the tracked min/max.
  EXPECT_EQ(h.percentile(0.0), values.front());
  EXPECT_EQ(h.percentile(100.0), values.back());
}

TEST(Histogram, MergeRejectsMismatchedGeometry) {
  Histogram a(1e-6, 1e3, 96);
  Histogram b(1e-6, 1e3, 32);
  EXPECT_THROW(a.merge(b), Error);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0), Error);
  EXPECT_THROW(Histogram(1.0, 1.0), Error);
  EXPECT_THROW(Histogram(1e-6, 1e3, 0), Error);
}

}  // namespace
}  // namespace deepcam
