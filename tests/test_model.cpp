#include "nn/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"

namespace deepcam::nn {
namespace {

std::unique_ptr<Model> tiny_mlp() {
  auto m = std::make_unique<Model>("tiny");
  m->add(std::make_unique<Linear>("fc1", 4, 8, 1));
  m->add(std::make_unique<ReLU>("r1"));
  m->add(std::make_unique<Linear>("fc2", 8, 3, 2));
  return m;
}

TEST(Model, SequentialDetection) {
  auto m = tiny_mlp();
  EXPECT_TRUE(m->is_sequential());
  EXPECT_EQ(m->node_count(), 3u);
}

TEST(Model, ForwardProducesLogits) {
  auto m = tiny_mlp();
  Tensor in({1, 4, 1, 1});
  in.fill(0.5f);
  Tensor out = m->forward(in, false);
  EXPECT_TRUE((out.shape() == Shape{1, 3, 1, 1}));
}

TEST(Model, ForwardAllReturnsEveryNode) {
  auto m = tiny_mlp();
  Tensor in({1, 4, 1, 1});
  auto outs = m->forward_all(in);
  EXPECT_EQ(outs.size(), 3u);
  EXPECT_EQ(outs[0].shape().c, 8u);
  EXPECT_EQ(outs[2].shape().c, 3u);
}

TEST(Model, ResidualGraphEvaluates) {
  Model m("res");
  const int a = m.add(std::make_unique<Linear>("fc1", 4, 4, 3));
  const int b = m.add(std::make_unique<ReLU>("r"), a);
  const int c = m.add(std::make_unique<Add>("add"), b, a);  // skip connection
  (void)c;
  EXPECT_FALSE(m.is_sequential());
  Tensor in({1, 4, 1, 1});
  in.fill(1.0f);
  Tensor out = m.forward(in, false);
  // add = relu(fc1(x)) + fc1(x): where fc1(x) >= 0 output is 2*fc1(x).
  auto outs = m.forward_all(in);
  for (std::size_t i = 0; i < 4; ++i) {
    const float fc = outs[0][i];
    const float expect = (fc > 0 ? 2.0f * fc : fc);
    EXPECT_FLOAT_EQ(out[i], expect);
  }
}

TEST(Model, BadInputIndexThrows) {
  Model m("bad");
  EXPECT_THROW(m.add(std::make_unique<ReLU>("r"), 5), Error);
  EXPECT_THROW(m.add(std::make_unique<ReLU>("r"), -2), Error);
}

TEST(Model, BackwardRequiresSequential) {
  Model m("res");
  const int a = m.add(std::make_unique<Linear>("fc1", 2, 2, 4));
  m.add(std::make_unique<Add>("add"), a, a);
  Tensor g({1, 2, 1, 1});
  EXPECT_THROW(m.backward(g), Error);
}

TEST(Model, ParamCount) {
  auto m = tiny_mlp();
  // fc1: 4*8+8, fc2: 8*3+3.
  EXPECT_EQ(m->param_count(), 4u * 8 + 8 + 8 * 3 + 3);
}

TEST(ArgmaxClass, PicksLargest) {
  Tensor logits({2, 3, 1, 1});
  logits.at(0, 1, 0, 0) = 5.0f;
  logits.at(1, 2, 0, 0) = 2.0f;
  EXPECT_EQ(argmax_class(logits, 0), 1u);
  EXPECT_EQ(argmax_class(logits, 1), 2u);
}

TEST(SoftmaxCrossEntropy, UniformLogits) {
  Tensor logits({1, 4, 1, 1});
  Tensor grad;
  const float loss = softmax_cross_entropy(logits, {2}, &grad);
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5);
  // Gradient: p - onehot = 0.25 everywhere except 0.25-1 at the label.
  EXPECT_NEAR(grad[0], 0.25f, 1e-5);
  EXPECT_NEAR(grad[2], -0.75f, 1e-5);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZero) {
  Tensor logits({2, 5, 1, 1});
  for (std::size_t i = 0; i < 10; ++i)
    logits[i] = static_cast<float>(i) * 0.1f;
  Tensor grad;
  softmax_cross_entropy(logits, {1, 3}, &grad);
  for (std::size_t n = 0; n < 2; ++n) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) sum += grad.at(n, c, 0, 0);
    EXPECT_NEAR(sum, 0.0f, 1e-5);
  }
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectHasLowLoss) {
  Tensor logits({1, 3, 1, 1});
  logits[0] = 10.0f;
  const float loss = softmax_cross_entropy(logits, {0}, nullptr);
  EXPECT_LT(loss, 0.01f);
}

TEST(Model, TrainingStepReducesLoss) {
  auto m = tiny_mlp();
  Tensor in({4, 4, 1, 1});
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>((i % 7)) * 0.2f - 0.5f;
  const std::vector<std::size_t> labels = {0, 1, 2, 0};
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 200; ++step) {
    Tensor logits = m->forward(in, true);
    Tensor grad;
    const float loss = softmax_cross_entropy(logits, labels, &grad);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    m->backward(grad);
    m->update(0.2f);
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
}

}  // namespace
}  // namespace deepcam::nn
