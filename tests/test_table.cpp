#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace deepcam {
namespace {

TEST(Table, PrintsHeadersAndRows) {
  Table t({"model", "cycles"});
  t.add_row({"lenet5", "123"});
  t.add_row({"vgg11", "456789"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("lenet5"), std::string::npos);
  EXPECT_NE(s.find("456789"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumFormatsPlainAndScientific) {
  EXPECT_EQ(Table::num(1.5, 2), "1.50");
  EXPECT_EQ(Table::num(0.0, 1), "0.0");
  const std::string big = Table::num(2.5e8, 2);
  EXPECT_NE(big.find('e'), std::string::npos);
  const std::string small = Table::num(1e-5, 2);
  EXPECT_NE(small.find('e'), std::string::npos);
}

TEST(Table, RatioFormat) {
  EXPECT_EQ(Table::ratio(12.345, 2), "12.35x");
  EXPECT_EQ(Table::ratio(1.0, 1), "1.0x");
}

TEST(Table, ColumnsAligned) {
  Table t({"x", "verylongheader"});
  t.add_row({"longercell", "y"});
  std::ostringstream os;
  t.print(os);
  std::string line;
  std::istringstream is(os.str());
  std::vector<std::size_t> lengths;
  while (std::getline(is, line)) lengths.push_back(line.size());
  ASSERT_GE(lengths.size(), 3u);
  EXPECT_EQ(lengths[0], lengths[1]);
  EXPECT_EQ(lengths[0], lengths[2]);
}

}  // namespace
}  // namespace deepcam
