#include "core/postproc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace deepcam::core {
namespace {

Context make_ctx(double norm) {
  Context c;
  c.bits = deepcam::BitVec(hash::kMaxHashBits);
  c.exact_norm = norm;
  c.norm_code = deepcam::MiniFloat::encode(static_cast<float>(norm));
  return c;
}

TEST(PostProc, PerfectMatchGivesNormProductPlusBias) {
  PostProcessingUnit pp;
  const Context w = make_ctx(2.0);  // exactly representable
  const Context a = make_ctx(4.0);
  const double out = pp.finish_dot_product(w, a, 0, 512, 1.5f);
  EXPECT_DOUBLE_EQ(out, 2.0 * 4.0 + 1.5);
}

TEST(PostProc, MiniFloatNormOptionChangesResult) {
  PostProcessingUnit::Options mf;
  mf.minifloat_norms = true;
  PostProcessingUnit pp_mf(mf);
  PostProcessingUnit::Options fp;
  fp.minifloat_norms = false;
  PostProcessingUnit pp_fp(fp);
  const Context w = make_ctx(1.23456);  // not representable in E4M3
  const Context a = make_ctx(2.71828);
  const double o_mf = pp_mf.finish_dot_product(w, a, 0, 512, 0.0f);
  const double o_fp = pp_fp.finish_dot_product(w, a, 0, 512, 0.0f);
  EXPECT_NE(o_mf, o_fp);
  EXPECT_NEAR(o_mf, o_fp, std::abs(o_fp) * 0.13);  // two 6.25% quantizations
  EXPECT_DOUBLE_EQ(o_fp, 1.23456 * 2.71828);
}

TEST(PostProc, PwlVersusExactCosineOption) {
  PostProcessingUnit::Options exact_cos;
  exact_cos.use_pwl_cosine = false;
  PostProcessingUnit pp(exact_cos);
  const Context w = make_ctx(1.0);
  const Context a = make_ctx(1.0);
  // hd = k/4 -> theta = pi/4 -> cos = sqrt(2)/2.
  const double out = pp.finish_dot_product(w, a, 128, 512, 0.0f);
  EXPECT_NEAR(out, std::sqrt(2.0) / 2.0, 1e-9);
}

TEST(PostProc, EnergyAccountingPerDotProduct) {
  PostProcessingUnit pp;
  const Context w = make_ctx(1.0);
  const Context a = make_ctx(1.0);
  pp.finish_dot_product(w, a, 10, 256, 0.0f);
  const double e1 = pp.stats().energy;
  EXPECT_GT(e1, 0.0);
  pp.finish_dot_product(w, a, 10, 256, 0.0f);
  EXPECT_NEAR(pp.stats().energy, 2.0 * e1, 1e-18);
  EXPECT_EQ(pp.stats().dot_products, 2u);
}

TEST(PostProc, PeripheralCharges) {
  PostProcessingUnit pp;
  pp.charge_peripheral(100);
  EXPECT_EQ(pp.stats().peripheral_ops, 100u);
  EXPECT_GT(pp.stats().energy, 0.0);
}

TEST(PostProc, ContextGenerationCostScalesWithSize) {
  PostProcessingUnit a, b;
  a.charge_context_generation(27, 256);
  b.charge_context_generation(2304, 1024);
  EXPECT_GT(b.stats().ctxgen_energy, 50.0 * a.stats().ctxgen_energy);
  EXPECT_EQ(a.stats().ctxgen_cycles, b.stats().ctxgen_cycles);  // pipelined
}

TEST(PostProc, ResetStats) {
  PostProcessingUnit pp;
  pp.charge_peripheral(5);
  pp.charge_context_generation(10, 256);
  pp.reset_stats();
  EXPECT_EQ(pp.stats().peripheral_ops, 0u);
  EXPECT_EQ(pp.stats().ctxgen_energy, 0.0);
}

TEST(PostProcStats, Accumulate) {
  PostProcStats a, b;
  a.energy = 1.0;
  a.dot_products = 2;
  b.energy = 0.5;
  b.dot_products = 3;
  b.ctxgen_cycles = 7;
  a += b;
  EXPECT_DOUBLE_EQ(a.energy, 1.5);
  EXPECT_EQ(a.dot_products, 5u);
  EXPECT_EQ(a.ctxgen_cycles, 7u);
}

}  // namespace
}  // namespace deepcam::core
