// Serving subsystem tests: queue admission/backpressure, micro-batch
// coalescing, multi-model sessions, end-to-end correctness against the
// single-sample accelerator, the serving determinism contract — a seeded
// trace replayed at 1 and 8 server workers yields bitwise-identical
// per-request outputs (order-independent) — and the SLO tier: table-driven
// virtual-clock scheduler tests pinning exact shed/expire/downgrade
// decisions, a deterministic flash-crowd simulation proving SLO-aware
// goodput beats the FIFO baseline at 2x saturation with zero lost
// requests, and property tests (accepted => answered exactly once;
// per-class accounting sums to offered load).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>

#include "core/accelerator.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "serve/batcher.hpp"
#include "serve/clock.hpp"
#include "serve/loadgen.hpp"
#include "serve/request_queue.hpp"

namespace deepcam::serve {
namespace {

std::unique_ptr<nn::Model> tiny_cnn(std::uint64_t seed) {
  auto m = std::make_unique<nn::Model>("tiny_cnn");
  m->add(std::make_unique<nn::Conv2D>("conv1",
                                      nn::ConvSpec{1, 4, 3, 3, 1, 0}, seed));
  m->add(std::make_unique<nn::ReLU>("relu1"));
  m->add(std::make_unique<nn::MaxPool>("pool1", 2, 2));
  m->add(std::make_unique<nn::Flatten>("flat"));
  m->add(std::make_unique<nn::Linear>("fc", 4 * 3 * 3, 5, seed + 1));
  return m;
}

constexpr nn::Shape kTinyShape{1, 1, 8, 8};

void expect_bitwise_equal(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_TRUE(a.shape() == b.shape());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)));
}

Request make_request(std::size_t session, std::uint64_t id = 0) {
  Request r;
  r.id = id;
  r.session = session;
  r.input = LoadGenerator::make_input(kTinyShape, id);
  return r;
}

// --- RequestQueue ---------------------------------------------------------

TEST(RequestQueue, TryPushRejectsWhenFull) {
  RequestQueue q(2);
  EXPECT_EQ(q.try_push(make_request(0)), Admission::kAccepted);
  EXPECT_EQ(q.try_push(make_request(0)), Admission::kAccepted);
  EXPECT_EQ(q.try_push(make_request(0)), Admission::kRejectedFull);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.max_depth(), 2u);
}

TEST(RequestQueue, CloseRejectsAndDrains) {
  RequestQueue q(4);
  ASSERT_EQ(q.try_push(make_request(0)), Admission::kAccepted);
  q.close();
  EXPECT_EQ(q.try_push(make_request(0)), Admission::kRejectedClosed);
  BatchPolicy policy;
  // Pending request still drains...
  EXPECT_EQ(q.pop_micro_batch(policy).size(), 1u);
  // ...then pop returns empty (the worker-exit signal).
  EXPECT_TRUE(q.pop_micro_batch(policy).empty());
}

TEST(RequestQueue, MicroBatchFillsToMaxWithoutWaiting) {
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_size = 4;
  policy.max_queue_delay = std::chrono::microseconds(60'000'000);  // no-op
  for (std::uint64_t i = 0; i < 6; ++i)
    ASSERT_EQ(q.try_push(make_request(0, i)), Admission::kAccepted);
  // A full batch is available: pop must not wait for the delay bound.
  const auto t0 = Clock::now();
  const auto batch = q.pop_micro_batch(policy);
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - t0).count(), 10.0);
  ASSERT_EQ(batch.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].id, i);  // FIFO
  BatchPolicy flush = policy;  // the 2-request tail leaves on its delay bound
  flush.max_queue_delay = std::chrono::microseconds(0);
  EXPECT_EQ(q.pop_micro_batch(flush).size(), 2u);
}

TEST(RequestQueue, MicroBatchIsSingleSessionAndPreservesOtherSessions) {
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_size = 8;
  policy.max_queue_delay = std::chrono::microseconds(0);  // flush instantly
  ASSERT_EQ(q.try_push(make_request(0, 1)), Admission::kAccepted);
  ASSERT_EQ(q.try_push(make_request(1, 2)), Admission::kAccepted);
  ASSERT_EQ(q.try_push(make_request(0, 3)), Admission::kAccepted);
  // Head is session 0: coalesces ids {1,3} around the session-1 request.
  const auto batch0 = q.pop_micro_batch(policy);
  ASSERT_EQ(batch0.size(), 2u);
  EXPECT_EQ(batch0[0].session, 0u);
  EXPECT_EQ(batch0[0].id, 1u);
  EXPECT_EQ(batch0[1].id, 3u);
  // Session 1 kept its place.
  const auto batch1 = q.pop_micro_batch(policy);
  ASSERT_EQ(batch1.size(), 1u);
  EXPECT_EQ(batch1[0].session, 1u);
}

TEST(RequestQueue, DelayBoundDispatchesPartialBatch) {
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_size = 8;
  policy.max_queue_delay = std::chrono::microseconds(2000);
  ASSERT_EQ(q.try_push(make_request(0, 7)), Admission::kAccepted);
  const auto t0 = Clock::now();
  const auto batch = q.pop_micro_batch(policy);  // waits out the delay
  const double waited =
      std::chrono::duration<double>(Clock::now() - t0).count();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 7u);
  EXPECT_LT(waited, 1.0);  // delay-bounded, not stuck until a full batch
}

TEST(RequestQueue, LateArrivalsJoinTheWaitingBatch) {
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_size = 2;
  policy.max_queue_delay = std::chrono::microseconds(10'000'000);
  ASSERT_EQ(q.try_push(make_request(0, 1)), Admission::kAccepted);
  std::thread late([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(q.try_push(make_request(0, 2)), Admission::kAccepted);
  });
  // Blocks on the partial batch until the late arrival completes it (well
  // before the 10 s delay bound).
  const auto batch = q.pop_micro_batch(policy);
  late.join();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
}

TEST(DynamicBatcher, WrapsQueueWithPolicy) {
  RequestQueue q(8);
  BatchPolicy policy;
  policy.max_batch_size = 3;
  policy.max_queue_delay = std::chrono::microseconds(0);
  DynamicBatcher batcher(q, policy);
  EXPECT_EQ(batcher.policy().max_batch_size, 3u);
  for (std::uint64_t i = 0; i < 3; ++i)
    ASSERT_EQ(q.try_push(make_request(0, i)), Admission::kAccepted);
  const MicroBatch mb = batcher.next();
  EXPECT_EQ(mb.run.size(), 3u);
  EXPECT_TRUE(mb.expired.empty());
}

// --- Server end-to-end ----------------------------------------------------

struct ServerFixture {
  std::unique_ptr<nn::Model> model = tiny_cnn(90);
  std::shared_ptr<const core::CompiledModel> fast;
  std::shared_ptr<const core::CompiledModel> small;

  ServerFixture() {
    core::DeepCamConfig cfg;
    cfg.cam_rows = 16;
    fast = std::make_shared<const core::CompiledModel>(*model, cfg);
    core::DeepCamConfig cfg_small = cfg;
    cfg_small.default_hash_bits = 256;
    small = std::make_shared<const core::CompiledModel>(*model, cfg_small);
  }

  std::unique_ptr<Server> make_server(std::size_t workers,
                                      std::size_t capacity = 64) {
    ServerConfig sc;
    sc.num_workers = workers;
    sc.queue_capacity = capacity;
    sc.batch.max_batch_size = 4;
    sc.batch.max_queue_delay = std::chrono::microseconds(500);
    auto server = std::make_unique<Server>(sc);
    server->sessions().add_session("tiny", fast, /*engine_threads=*/2);
    server->sessions().add_session("tiny-k256", small, /*engine_threads=*/2);
    server->start();
    return server;
  }
};

TEST(SessionManager, NamedLookupAndDuplicateRejection) {
  ServerFixture fx;
  SessionManager mgr;
  EXPECT_EQ(mgr.add_session("a", fx.fast, 1), 0u);
  EXPECT_EQ(mgr.add_session("b", fx.small, 1), 1u);
  EXPECT_EQ(mgr.count(), 2u);
  EXPECT_EQ(mgr.find("a").value(), 0u);
  EXPECT_EQ(mgr.find("b").value(), 1u);
  EXPECT_FALSE(mgr.find("c").has_value());
  EXPECT_EQ(mgr.name(1), "b");
  EXPECT_THROW(mgr.add_session("a", fx.fast, 1), Error);
  EXPECT_THROW(mgr.add_session("", fx.fast, 1), Error);
}

TEST(Server, BlockingRunMatchesAcceleratorBitwisePerSession) {
  ServerFixture fx;
  auto server = fx.make_server(2);
  core::DeepCamConfig cfg;
  cfg.cam_rows = 16;
  core::DeepCamAccelerator acc(*fx.model, cfg);
  cfg.default_hash_bits = 256;
  core::DeepCamAccelerator acc_small(*fx.model, cfg);

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const nn::Tensor input = LoadGenerator::make_input(kTinyShape, seed);
    Response r = server->run("tiny", input);
    ASSERT_TRUE(r.ok());
    expect_bitwise_equal(r.logits, acc.run(input));
    EXPECT_GT(r.total_seconds, 0.0);
    EXPECT_GE(r.batch_size, 1u);
    Response r2 = server->run("tiny-k256", input);
    ASSERT_TRUE(r2.ok());
    expect_bitwise_equal(r2.logits, acc_small.run(input));
  }
  server->stop();
  const ServerSummary summary = server->summary();
  EXPECT_EQ(summary.total_completed(), 12u);
  EXPECT_EQ(summary.sessions.size(), 2u);
  EXPECT_EQ(summary.sessions[0].name, "tiny");
  EXPECT_EQ(summary.sessions[0].completed, 6u);
  EXPECT_EQ(summary.sessions[0].errors, 0u);
  EXPECT_GT(summary.sessions[0].latency_p99_ms, 0.0);
  EXPECT_GE(summary.sessions[0].latency_p99_ms,
            summary.sessions[0].latency_p50_ms);
}

TEST(Server, UnknownSessionAndStoppedServerAreRejected) {
  ServerFixture fx;
  auto server = fx.make_server(1);
  EXPECT_EQ(server->submit("nope", LoadGenerator::make_input(kTinyShape, 0),
                           nullptr),
            Admission::kRejectedUnknownSession);
  Response r = server->run("nope", LoadGenerator::make_input(kTinyShape, 0));
  EXPECT_FALSE(r.ok());
  server->stop();
  EXPECT_EQ(server->submit("tiny", LoadGenerator::make_input(kTinyShape, 0),
                           nullptr),
            Admission::kRejectedClosed);
  // Unknown-session turn-aways are visible in the summary even though they
  // resolve to no per-session row.
  const ServerSummary summary = server->summary();
  EXPECT_EQ(summary.unknown_session_rejected, 2u);
  EXPECT_EQ(summary.total_rejected(), 2u);
}

TEST(Server, BackpressureRejectsInsteadOfBlocking) {
  // One worker, tiny queue: flood submit() far beyond capacity and verify
  // the overflow is rejected (kRejectedFull), everything accepted is
  // answered, and the server survives.
  ServerFixture fx;
  auto server = fx.make_server(1, /*capacity=*/4);
  std::atomic<std::size_t> done{0};
  std::size_t accepted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Admission verdict =
        server->submit("tiny", LoadGenerator::make_input(kTinyShape, i),
                       [&done](Response&&) { ++done; });
    if (verdict == Admission::kAccepted)
      ++accepted;
    else if (verdict == Admission::kRejectedFull)
      ++rejected;
  }
  server->drain();
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(done.load(), accepted);
  server->stop();
  const ServerSummary summary = server->summary();
  EXPECT_EQ(summary.sessions[0].completed, accepted);
  EXPECT_EQ(summary.sessions[0].rejected, rejected);
  EXPECT_LE(summary.max_queue_depth, 4u);
}

TEST(Server, StopAnswersEveryAcceptedRequest) {
  ServerFixture fx;
  auto server = fx.make_server(2, /*capacity=*/128);
  std::atomic<std::size_t> done{0};
  std::size_t accepted = 0;
  for (std::uint64_t i = 0; i < 32; ++i)
    if (server->submit("tiny", LoadGenerator::make_input(kTinyShape, i),
                       [&done](Response&&) { ++done; }) ==
        Admission::kAccepted)
      ++accepted;
  server->stop();  // close + drain + join, without an explicit drain()
  EXPECT_EQ(done.load(), accepted);
}

TEST(Server, MicroBatchingCoalescesBurst) {
  // A burst submitted while one worker is busy must ride in micro-batches
  // (mean batch size > 1), not one engine call per request.
  ServerFixture fx;
  ServerConfig sc;
  sc.num_workers = 1;
  sc.queue_capacity = 64;
  sc.batch.max_batch_size = 8;
  sc.batch.max_queue_delay = std::chrono::microseconds(4000);
  Server server(sc);
  server.sessions().add_session("tiny", fx.fast, 1);
  server.start();
  for (std::uint64_t i = 0; i < 32; ++i)
    server.submit("tiny", LoadGenerator::make_input(kTinyShape, i), nullptr);
  server.drain();
  server.stop();
  const ServerSummary summary = server.summary();
  EXPECT_EQ(summary.sessions[0].completed, 32u);
  EXPECT_GT(summary.sessions[0].mean_batch_size, 1.0);
  EXPECT_LE(summary.sessions[0].max_batch_size, 8u);
  EXPECT_LT(summary.sessions[0].batches, 32u);
}

// --- LoadGenerator + determinism -------------------------------------------

TEST(LoadGenerator, TraceIsDeterministicAndWellFormed) {
  TraceConfig tc;
  tc.requests = 50;
  tc.rate_rps = 500.0;
  tc.sessions = {"a", "b"};
  tc.seed = 11;
  const Trace t1 = make_trace(tc);
  const Trace t2 = make_trace(tc);
  ASSERT_EQ(t1.events.size(), 50u);
  double prev = 0.0;
  bool saw_both = false;
  for (std::size_t i = 0; i < t1.events.size(); ++i) {
    EXPECT_EQ(t1.events[i].t_seconds, t2.events[i].t_seconds);
    EXPECT_EQ(t1.events[i].session, t2.events[i].session);
    EXPECT_EQ(t1.events[i].input_seed, t2.events[i].input_seed);
    EXPECT_GT(t1.events[i].t_seconds, prev);  // strictly increasing
    prev = t1.events[i].t_seconds;
    if (t1.events[i].session != t1.events[0].session) saw_both = true;
  }
  EXPECT_TRUE(saw_both);

  tc.seed = 12;
  const Trace t3 = make_trace(tc);
  EXPECT_NE(t1.events[0].input_seed, t3.events[0].input_seed);

  tc.arrivals = ArrivalProcess::kBursty;
  tc.burst_rate_rps = 5000.0;
  const Trace bursty = make_trace(tc);
  EXPECT_EQ(bursty.events.size(), 50u);
  EXPECT_GT(bursty.duration_seconds(), 0.0);
}

/// Replays one seeded trace and returns the per-event logits.
std::vector<nn::Tensor> replay_logits(ServerFixture& fx, const Trace& trace,
                                      std::size_t workers,
                                      ReplayOptions opts) {
  auto server = fx.make_server(workers);
  LoadGenerator loadgen(*server, {kTinyShape, kTinyShape});
  const LoadReport load = loadgen.replay(trace, opts);
  server->drain();
  server->stop();
  EXPECT_EQ(load.sent, trace.events.size());
  EXPECT_EQ(load.rejected, 0u);
  EXPECT_EQ(load.errors, 0u);
  EXPECT_GT(load.achieved_rps, 0.0);
  std::vector<nn::Tensor> logits;
  logits.reserve(load.records.size());
  for (const RequestRecord& rec : load.records) {
    EXPECT_TRUE(rec.completed);
    EXPECT_TRUE(rec.response.ok());
    logits.push_back(rec.response.logits);
  }
  return logits;
}

TEST(LoadGenerator, SeededReplayIsBitwiseStableAcrossWorkerCounts) {
  // The ISSUE 4 determinism contract: the same seeded trace, replayed
  // closed-loop at 1 and 8 server workers, produces bitwise-identical
  // per-request outputs (order-independent), each equal to the
  // single-sample accelerator on the same deterministic input.
  ServerFixture fx;
  TraceConfig tc;
  tc.requests = 24;
  tc.rate_rps = 2000.0;
  tc.sessions = {"tiny", "tiny-k256"};
  tc.seed = 21;
  const Trace trace = make_trace(tc);

  ReplayOptions closed;
  closed.mode = ReplayOptions::Mode::kClosedLoop;
  closed.closed_loop_clients = 6;
  const auto logits_1w = replay_logits(fx, trace, 1, closed);
  const auto logits_8w = replay_logits(fx, trace, 8, closed);

  core::DeepCamConfig cfg;
  cfg.cam_rows = 16;
  core::DeepCamAccelerator acc(*fx.model, cfg);
  cfg.default_hash_bits = 256;
  core::DeepCamAccelerator acc_small(*fx.model, cfg);

  ASSERT_EQ(logits_1w.size(), trace.events.size());
  ASSERT_EQ(logits_8w.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    expect_bitwise_equal(logits_1w[i], logits_8w[i]);
    const TraceEvent& e = trace.events[i];
    const nn::Tensor input =
        LoadGenerator::make_input(kTinyShape, e.input_seed);
    expect_bitwise_equal(
        logits_1w[i],
        e.session == 0 ? acc.run(input) : acc_small.run(input));
  }
}

TEST(LoadGenerator, OpenLoopReplayDeliversEverythingUnderBackpressure) {
  // Open-loop at a rate far beyond capacity with a small queue: some
  // requests get rejected (that is the point of admission control), every
  // accepted one completes, and the latency histogram is populated.
  ServerFixture fx;
  auto server = fx.make_server(2, /*capacity=*/8);
  TraceConfig tc;
  tc.requests = 48;
  tc.rate_rps = 20000.0;
  tc.sessions = {"tiny"};
  tc.seed = 31;
  LoadGenerator loadgen(*server, {kTinyShape});
  ReplayOptions opts;  // open loop
  const LoadReport load = loadgen.replay(make_trace(tc), opts);
  server->drain();
  server->stop();
  EXPECT_EQ(load.sent + load.rejected, 48u);
  EXPECT_EQ(load.errors, 0u);
  EXPECT_EQ(load.latency.count(), load.sent);
  if (load.sent > 0) {
    EXPECT_GT(load.percentile_ms(50), 0.0);
    EXPECT_GE(load.percentile_ms(99), load.percentile_ms(50));
  }
  const ServerSummary summary = server->summary();
  EXPECT_EQ(summary.sessions[0].completed, load.sent);
  EXPECT_EQ(summary.sessions[0].rejected, load.rejected);
}

// --- VirtualClock ----------------------------------------------------------

TEST(VirtualClock, TimeOnlyMovesOnAdvance) {
  VirtualClock clock;
  const Clock::time_point t0 = clock.now();
  EXPECT_EQ(clock.now(), t0);
  clock.advance(std::chrono::milliseconds(5));
  EXPECT_EQ(clock.now(), t0 + std::chrono::milliseconds(5));
  clock.advance_to(t0 + std::chrono::milliseconds(3));  // never backwards
  EXPECT_EQ(clock.now(), t0 + std::chrono::milliseconds(5));
  clock.sleep_until(t0 + std::chrono::milliseconds(9));  // = advance_to
  EXPECT_EQ(clock.now(), t0 + std::chrono::milliseconds(9));
}

TEST(VirtualClock, WaitUntilTimesOutExactlyAtVirtualDeadline) {
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(mu);
  const Clock::time_point deadline =
      clock.now() + std::chrono::milliseconds(2);
  EXPECT_FALSE(clock.wait_until(cv, lk, deadline));  // time never moved
  clock.advance(std::chrono::milliseconds(2));
  EXPECT_TRUE(clock.wait_until(cv, lk, deadline));  // already reached
}

// --- Table-driven SLO scheduler decisions (virtual clock, no sleeps) -------

Request make_slo_request(SloClass slo, std::uint64_t id,
                         Clock::time_point deadline = {}) {
  Request r;
  r.id = id;
  r.session = 0;
  r.slo = slo;
  r.deadline = deadline;
  return r;
}

TEST(SloAdmission, DepthWatermarksShedExactlyPerTable) {
  // Capacity 8, watermarks: interactive never sheds, standard at depth
  // >= 6, batch at depth >= 4. Each row pins the exact verdict at the
  // depth reached by the preceding rows — one deterministic decision
  // sequence, replayed identically on every run.
  AdmissionPolicy adm;
  adm.shed_depth_fraction = {1.0, 0.75, 0.5};
  RequestQueue q(8, adm);
  struct Row {
    SloClass slo;
    Admission want;  // verdict at the depth accumulated so far
  };
  const Row table[] = {
      {SloClass::kBatch, Admission::kAccepted},        // depth 0
      {SloClass::kBatch, Admission::kAccepted},        // depth 1
      {SloClass::kStandard, Admission::kAccepted},     // depth 2
      {SloClass::kInteractive, Admission::kAccepted},  // depth 3
      {SloClass::kBatch, Admission::kRejectedShed},    // depth 4 >= 0.5*8
      {SloClass::kStandard, Admission::kAccepted},     // depth 4
      {SloClass::kStandard, Admission::kAccepted},     // depth 5
      {SloClass::kStandard, Admission::kRejectedShed}, // depth 6 >= 0.75*8
      {SloClass::kBatch, Admission::kRejectedShed},    // depth 6
      {SloClass::kInteractive, Admission::kAccepted},  // depth 6
      {SloClass::kInteractive, Admission::kAccepted},  // depth 7
      {SloClass::kInteractive, Admission::kRejectedFull},  // depth 8 = cap
  };
  std::uint64_t id = 0;
  for (const Row& row : table) {
    SCOPED_TRACE("row " + std::to_string(id));
    EXPECT_EQ(q.try_push(make_slo_request(row.slo, id++)), row.want);
  }
  EXPECT_EQ(q.depth(), 8u);
}

TEST(SloAdmission, EstimatedWaitShedsSlowClassesFirst) {
  // est_service_rps = 100 => estimated wait = depth / 100 s. Batch budget
  // 50 ms (sheds once depth > 5), standard budget 90 ms (sheds once depth
  // > 9), interactive unlimited.
  AdmissionPolicy adm;
  adm.est_service_rps = 100.0;
  adm.max_wait[static_cast<std::size_t>(SloClass::kBatch)] =
      std::chrono::milliseconds(50);
  adm.max_wait[static_cast<std::size_t>(SloClass::kStandard)] =
      std::chrono::milliseconds(90);
  RequestQueue q(64, adm);
  std::uint64_t id = 0;
  for (int i = 0; i < 6; ++i)  // depth 0..5: every class admitted
    ASSERT_EQ(q.try_push(make_slo_request(SloClass::kBatch, id++)),
              Admission::kAccepted);
  // depth 6: 60 ms estimated wait kills batch, spares standard.
  EXPECT_EQ(q.try_push(make_slo_request(SloClass::kBatch, id++)),
            Admission::kRejectedShed);
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(q.try_push(make_slo_request(SloClass::kStandard, id++)),
              Admission::kAccepted);
  // depth 10: 100 ms estimated wait kills standard too; interactive rides.
  EXPECT_EQ(q.try_push(make_slo_request(SloClass::kStandard, id++)),
            Admission::kRejectedShed);
  EXPECT_EQ(q.try_push(make_slo_request(SloClass::kInteractive, id++)),
            Admission::kAccepted);
}

TEST(SloExpiry, BatchFormationDivertsLapsedDeadlinesPerTable) {
  VirtualClock clock;
  RequestQueue q(16, AdmissionPolicy{}, &clock);
  BatchPolicy bp;
  bp.max_batch_size = 8;
  bp.max_queue_delay = std::chrono::microseconds(0);
  const Clock::time_point t0 = clock.now();
  // Deadlines at +10/+20/+30 ms and one deadline-free request.
  ASSERT_EQ(q.try_push(make_slo_request(SloClass::kStandard, 0,
                                        t0 + std::chrono::milliseconds(10))),
            Admission::kAccepted);
  ASSERT_EQ(q.try_push(make_slo_request(SloClass::kStandard, 1,
                                        t0 + std::chrono::milliseconds(20))),
            Admission::kAccepted);
  ASSERT_EQ(q.try_push(make_slo_request(SloClass::kStandard, 2,
                                        t0 + std::chrono::milliseconds(30))),
            Admission::kAccepted);
  ASSERT_EQ(q.try_push(make_slo_request(SloClass::kStandard, 3)),
            Admission::kAccepted);
  clock.advance(std::chrono::milliseconds(15));  // only id 0 has lapsed
  std::vector<Request> expired;
  const auto batch = q.pop_micro_batch(bp, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 0u);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
  EXPECT_EQ(batch[2].id, 3u);
}

TEST(SloExpiry, FullyLapsedBatchReturnsExpiredOnlyWithoutWaiting) {
  VirtualClock clock;
  RequestQueue q(16, AdmissionPolicy{}, &clock);
  BatchPolicy bp;
  bp.max_batch_size = 8;
  // A huge coalescing window that must NOT be waited out when every
  // extracted request has already expired.
  bp.max_queue_delay = std::chrono::hours(1);
  const Clock::time_point t0 = clock.now();
  ASSERT_EQ(q.try_push(make_slo_request(SloClass::kStandard, 0,
                                        t0 + std::chrono::milliseconds(1))),
            Admission::kAccepted);
  ASSERT_EQ(q.try_push(make_slo_request(SloClass::kStandard, 1,
                                        t0 + std::chrono::milliseconds(2))),
            Admission::kAccepted);
  clock.advance(std::chrono::milliseconds(5));
  std::vector<Request> expired;
  const auto batch = q.pop_micro_batch(bp, &expired);
  EXPECT_TRUE(batch.empty());
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 0u);
  EXPECT_EQ(expired[1].id, 1u);
}

TEST(SloExpiry, EarliestRiderDeadlineCapsTheCoalescingWait) {
  // One request with a 5 ms (virtual) deadline under a 1 h delay bound:
  // the pop must return when the *deadline* lapses, not the delay bound.
  VirtualClock clock;
  RequestQueue q(16, AdmissionPolicy{}, &clock);
  BatchPolicy bp;
  bp.max_batch_size = 8;
  bp.max_queue_delay = std::chrono::hours(1);
  const Clock::time_point t0 = clock.now();
  ASSERT_EQ(q.try_push(make_slo_request(SloClass::kStandard, 0,
                                        t0 + std::chrono::milliseconds(5))),
            Admission::kAccepted);
  std::vector<Request> expired;
  std::vector<Request> batch;
  std::thread popper([&] { batch = q.pop_micro_batch(bp, &expired); });
  // Wait (real time) until the popper has extracted the head — its
  // decision is then pinned at virtual t0 — before lapsing the deadline.
  while (q.depth() != 0) std::this_thread::yield();
  clock.advance(std::chrono::milliseconds(6));  // lapse the rider's deadline
  popper.join();
  ASSERT_EQ(batch.size(), 1u);  // extracted before it lapsed -> it runs
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_TRUE(expired.empty());
}

TEST(SloPriority, HeadSelectionPrefersUrgentClasses) {
  RequestQueue q(16);
  BatchPolicy bp;
  bp.max_batch_size = 8;
  bp.max_queue_delay = std::chrono::microseconds(0);
  // Batch class arrives first but interactive must be served first.
  Request a = make_slo_request(SloClass::kBatch, 0);
  Request b = make_slo_request(SloClass::kInteractive, 1);
  Request c = make_slo_request(SloClass::kBatch, 2);
  a.session = b.session = c.session = 1;  // same session: all coalesce
  ASSERT_EQ(q.try_push(std::move(a)), Admission::kAccepted);
  ASSERT_EQ(q.try_push(std::move(b)), Admission::kAccepted);
  ASSERT_EQ(q.try_push(std::move(c)), Admission::kAccepted);
  const auto batch = q.pop_micro_batch(bp);
  ASSERT_EQ(batch.size(), 3u);
  // Head picked by (class, seq); extraction preserves queue order.
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[1].id, 1u);
  EXPECT_EQ(batch[2].id, 2u);

  // Across sessions the urgent class wins the whole micro-batch.
  Request d = make_slo_request(SloClass::kBatch, 10);
  d.session = 0;
  Request e = make_slo_request(SloClass::kInteractive, 11);
  e.session = 2;
  ASSERT_EQ(q.try_push(std::move(d)), Admission::kAccepted);
  ASSERT_EQ(q.try_push(std::move(e)), Admission::kAccepted);
  const auto urgent = q.pop_micro_batch(bp);
  ASSERT_EQ(urgent.size(), 1u);
  EXPECT_EQ(urgent[0].id, 11u);  // session 2 jumped the session-0 request
  EXPECT_EQ(urgent[0].session, 2u);
}

// --- k-fallback (quality dial) ---------------------------------------------

TEST(SessionManager, FallbackLinksValidateAndResolve) {
  ServerFixture fx;
  SessionManager mgr;
  mgr.add_session("hi", fx.fast, 1);
  mgr.add_session("lo", fx.small, 1);
  EXPECT_FALSE(mgr.fallback(0).has_value());
  mgr.set_fallback("hi", "lo");
  ASSERT_TRUE(mgr.fallback(0).has_value());
  EXPECT_EQ(*mgr.fallback(0), 1u);
  EXPECT_FALSE(mgr.fallback(1).has_value());
  EXPECT_THROW(mgr.set_fallback("hi", "nope"), Error);
  EXPECT_THROW(mgr.set_fallback("nope", "lo"), Error);
  EXPECT_THROW(mgr.set_fallback("hi", "hi"), Error);
}

TEST(Server, DowngradeDialReroutesPressuredRequestsToFallbackTier) {
  // downgrade_fraction = 0.0: every admission counts as pressured, so
  // every "tiny" request deterministically reroutes to "tiny-k256" — and
  // its logits are bitwise the k=256 engine's, proving the dial trades
  // accuracy (hash length), not correctness.
  ServerFixture fx;
  ServerConfig sc;
  sc.num_workers = 2;
  sc.queue_capacity = 64;
  sc.batch.max_batch_size = 4;
  sc.batch.max_queue_delay = std::chrono::microseconds(500);
  sc.slo.downgrade_fraction = 0.0;
  Server server(sc);
  server.sessions().add_session("tiny", fx.fast, 2);
  server.sessions().add_session("tiny-k256", fx.small, 2);
  server.sessions().set_fallback("tiny", "tiny-k256");
  server.start();

  core::DeepCamConfig cfg;
  cfg.cam_rows = 16;
  cfg.default_hash_bits = 256;
  core::DeepCamAccelerator acc_small(*fx.model, cfg);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const nn::Tensor input = LoadGenerator::make_input(kTinyShape, seed);
    Response r = server.run("tiny", input);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.downgraded);
    expect_bitwise_equal(r.logits, acc_small.run(input));
  }
  server.stop();
  const ServerSummary summary = server.summary();
  EXPECT_EQ(summary.sessions[0].completed, 0u);   // "tiny" never ran
  EXPECT_EQ(summary.sessions[1].completed, 8u);   // all served by fallback
  EXPECT_EQ(summary.sessions[1].downgraded, 8u);
  EXPECT_EQ(summary.total_downgraded(), 8u);
}

TEST(Server, NoFallbackMeansNoDowngradeEvenUnderPressure) {
  ServerFixture fx;
  ServerConfig sc;
  sc.num_workers = 1;
  sc.queue_capacity = 8;
  sc.batch.max_batch_size = 4;
  sc.batch.max_queue_delay = std::chrono::microseconds(100);
  sc.slo.downgrade_fraction = 0.0;  // always pressured...
  Server server(sc);
  server.sessions().add_session("tiny", fx.fast, 1);  // ...but nowhere to go
  server.start();
  Response r = server.run("tiny", LoadGenerator::make_input(kTinyShape, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.downgraded);
  server.stop();
  EXPECT_EQ(server.summary().total_downgraded(), 0u);
}

// --- Deterministic flash-crowd goodput: SLO-aware vs FIFO ------------------

struct SimOutcome {
  std::size_t arrivals = 0;
  std::size_t accepted = 0;
  std::size_t shed = 0;          // watermark rejections
  std::size_t rejected_full = 0; // capacity rejections
  std::size_t completed = 0;     // ran through "service"
  std::size_t expired = 0;       // answered without running
  std::size_t slo_met = 0;       // completed within deadline
};

/// Single-threaded virtual-clock simulation of one server worker draining
/// the SLO queue at a fixed service rate (8 requests / 10 ms = 800 rps).
/// Every scheduling decision — shed at admission, expiry at batch
/// formation, completion-vs-deadline — is a pure function of the trace and
/// the policy, so both policies are compared on identical arrivals with
/// zero nondeterminism and zero real-time sleeps.
SimOutcome simulate_service(const Trace& trace, bool slo_aware) {
  constexpr auto kService = std::chrono::milliseconds(10);  // per batch
  const std::array<Clock::duration, kNumSloClasses> kDeadline = {
      std::chrono::milliseconds(25), std::chrono::milliseconds(50),
      std::chrono::milliseconds(100)};

  VirtualClock clock;
  const Clock::time_point t0 = clock.now();
  AdmissionPolicy adm;  // FIFO baseline: no watermarks
  if (slo_aware) adm.shed_depth_fraction = {1.0, 0.75, 0.35};
  RequestQueue q(40, adm, &clock);
  BatchPolicy bp;
  bp.max_batch_size = 8;
  bp.max_queue_delay = std::chrono::microseconds(0);

  SimOutcome out;
  out.arrivals = trace.events.size();
  auto to_duration = [](double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  };
  std::size_t next = 0;
  std::vector<Request> expired;
  while (next < trace.events.size() || q.depth() > 0) {
    // Admit everything that has arrived by virtual-now.
    while (next < trace.events.size() &&
           t0 + to_duration(trace.events[next].t_seconds) <= clock.now()) {
      const TraceEvent& e = trace.events[next];
      Request r = make_slo_request(e.slo, next);
      // Deadline anchored at the true arrival instant, not admission.
      r.deadline = t0 + to_duration(e.t_seconds) +
                   kDeadline[static_cast<std::size_t>(e.slo)];
      switch (q.try_push(std::move(r))) {
        case Admission::kAccepted: ++out.accepted; break;
        case Admission::kRejectedShed: ++out.shed; break;
        default: ++out.rejected_full; break;
      }
      ++next;
    }
    if (q.depth() == 0) {
      clock.advance_to(t0 + to_duration(trace.events[next].t_seconds));
      continue;
    }
    expired.clear();
    const auto batch =
        q.pop_micro_batch(bp, slo_aware ? &expired : nullptr);
    out.expired += expired.size();  // answered instantly, no service cost
    if (batch.empty()) continue;
    clock.advance(kService);  // the batch occupies the engine
    for (const Request& r : batch) {
      ++out.completed;
      if (r.deadline >= clock.now()) ++out.slo_met;
    }
  }
  return out;
}

TEST(SloGoodput, FlashCrowdSloAwareBeatsFifoWithZeroLostRequests) {
  // ISSUE 7 acceptance criterion. Flash crowd at 2x saturation: service
  // capacity is 800 rps, the spike offers 1600 rps. The SLO-aware policy
  // (shed batch-class early, expire doomed requests) must deliver strictly
  // more deadline-met responses than the FIFO baseline (no shedding, no
  // expiry), and neither may lose a single request: every arrival is
  // accepted+answered, shed, or backpressure-rejected.
  TraceConfig tc;
  tc.arrivals = ArrivalProcess::kFlash;
  tc.rate_rps = 400.0;
  tc.flash_rate_rps = 1600.0;   // 2x the 800 rps service rate
  tc.flash_start_seconds = 0.05;
  tc.flash_duration_seconds = 0.2;
  tc.requests = 200;
  tc.sessions = {"tiny"};
  tc.class_weights = {0.25, 0.5, 0.25};
  tc.seed = 7;
  const Trace trace = make_trace(tc);

  const SimOutcome slo = simulate_service(trace, /*slo_aware=*/true);
  const SimOutcome fifo = simulate_service(trace, /*slo_aware=*/false);

  // Zero lost requests, both policies: accounting is exhaustive.
  EXPECT_EQ(slo.accepted + slo.shed + slo.rejected_full, slo.arrivals);
  EXPECT_EQ(slo.completed + slo.expired, slo.accepted);
  EXPECT_EQ(fifo.accepted + fifo.shed + fifo.rejected_full, fifo.arrivals);
  EXPECT_EQ(fifo.completed + fifo.expired, fifo.accepted);
  // The FIFO baseline never sheds or expires by construction.
  EXPECT_EQ(fifo.shed, 0u);
  EXPECT_EQ(fifo.expired, 0u);
  // The headline claim: SLO-aware goodput strictly exceeds FIFO goodput
  // under the flash crowd (identical arrivals, identical service model).
  EXPECT_GT(slo.slo_met, fifo.slo_met);
  // And the win comes from the overload controls actually engaging.
  EXPECT_GT(slo.shed + slo.expired, 0u);
  // Determinism double-check: a second run reproduces both outcomes bit
  // for bit (same trace object, virtual time only).
  const SimOutcome slo2 = simulate_service(trace, /*slo_aware=*/true);
  EXPECT_EQ(slo2.slo_met, slo.slo_met);
  EXPECT_EQ(slo2.shed, slo.shed);
  EXPECT_EQ(slo2.expired, slo.expired);
}

// --- Property tests: conservation under SLO pressure -----------------------

TEST(SloProperty, AcceptedRequestsAreAnsweredExactlyOnceNeverLost) {
  // Tight deadlines + watermarks + tiny queue: sheds, expiries and
  // completions all occur, and still every accepted request is answered
  // exactly once — the on_done callback for request i fires once or (iff
  // rejected) never.
  ServerFixture fx;
  ServerConfig sc;
  sc.num_workers = 2;
  sc.queue_capacity = 8;
  sc.batch.max_batch_size = 4;
  sc.batch.max_queue_delay = std::chrono::microseconds(200);
  sc.slo.deadline = {std::chrono::microseconds(300),
                     std::chrono::milliseconds(2),
                     std::chrono::milliseconds(50)};
  sc.slo.admission.shed_depth_fraction = {1.0, 0.75, 0.5};
  Server server(sc);
  server.sessions().add_session("tiny", fx.fast, 2);
  server.start();

  constexpr std::size_t kN = 96;
  std::vector<std::atomic<std::uint32_t>> answers(kN);
  std::size_t accepted = 0, shed = 0, rejected = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    const SloClass slo = static_cast<SloClass>(i % kNumSloClasses);
    const Admission verdict = server.submit(
        "tiny", LoadGenerator::make_input(kTinyShape, i),
        [&answers, i](Response&&) { ++answers[i]; }, slo);
    if (verdict == Admission::kAccepted)
      ++accepted;
    else if (verdict == Admission::kRejectedShed)
      ++shed;
    else
      ++rejected;
  }
  server.drain();
  server.stop();

  std::size_t answered = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_LE(answers[i].load(), 1u) << "request " << i << " answered twice";
    answered += answers[i].load();
  }
  EXPECT_EQ(answered, accepted);            // exactly once, never lost
  EXPECT_EQ(accepted + shed + rejected, kN);
  const ServerSummary summary = server.summary();
  EXPECT_EQ(summary.total_completed(), accepted);
  EXPECT_EQ(summary.total_shed(), shed);
}

TEST(SloProperty, PerClassAccountingSumsToOfferedLoadAcrossSeeds) {
  // For several seeded mixed-class traces: per class, accepted == answered
  // (completed incl. errors + expired), and accepted + shed + other
  // rejections across classes equals the offered load. Holds with every
  // overload control turned on.
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    ServerFixture fx;
    ServerConfig sc;
    sc.num_workers = 2;
    sc.queue_capacity = 12;
    sc.batch.max_batch_size = 4;
    sc.batch.max_queue_delay = std::chrono::microseconds(300);
    sc.slo.deadline = {std::chrono::milliseconds(1),
                       std::chrono::milliseconds(5),
                       std::chrono::milliseconds(80)};
    sc.slo.admission.shed_depth_fraction = {1.0, 0.8, 0.4};
    sc.slo.downgrade_fraction = 0.5;
    Server server(sc);
    server.sessions().add_session("tiny", fx.fast, 2);
    server.sessions().add_session("tiny-k256", fx.small, 2);
    server.sessions().set_fallback("tiny", "tiny-k256");
    server.start();

    TraceConfig tc;
    tc.arrivals = ArrivalProcess::kFlash;
    tc.rate_rps = 500.0;
    tc.flash_rate_rps = 20000.0;
    tc.flash_start_seconds = 0.01;
    tc.flash_duration_seconds = 0.05;
    tc.requests = 80;
    tc.sessions = {"tiny"};
    tc.class_weights = {1.0, 1.0, 1.0};
    tc.seed = seed;
    const Trace trace = make_trace(tc);
    LoadGenerator loadgen(server, {kTinyShape});
    ReplayOptions opts;
    opts.time_scale = 2.0;
    const LoadReport load = loadgen.replay(trace, opts);
    server.drain();
    server.stop();
    const ServerSummary summary = server.summary();
    SCOPED_TRACE("seed " + std::to_string(seed));

    // Load-generator view: every event accounted for, sheds within
    // rejections, SLO-met within completions.
    EXPECT_EQ(load.sent + load.rejected, trace.events.size());
    EXPECT_LE(load.shed, load.rejected);
    EXPECT_EQ(load.sent,
              load.latency.count() + load.errors + load.expired);
    EXPECT_LE(load.slo_met, load.sent - load.errors - load.expired);

    // Server view agrees with the client view.
    EXPECT_EQ(summary.total_completed(), load.sent);
    EXPECT_EQ(summary.total_shed(), load.shed);
    EXPECT_EQ(summary.total_expired(), load.expired);

    // Per class: accepted == answered, and goodput pieces stay within it.
    ASSERT_EQ(summary.classes.size(), kNumSloClasses);
    std::uint64_t class_accepted = 0, class_shed = 0;
    for (const SloClassSummary& c : summary.classes) {
      EXPECT_EQ(c.accepted, c.completed) << c.name;
      EXPECT_LE(c.slo_met + c.expired + c.errors, c.completed) << c.name;
      class_accepted += c.accepted;
      class_shed += c.shed;
    }
    EXPECT_EQ(class_accepted, load.sent);
    EXPECT_EQ(class_shed, load.shed);
  }
}

TEST(SloServer, VirtualClockReplayExpiresEverythingPastDeadline) {
  // End-to-end virtual-clock run: with deadlines stamped and the clock
  // advanced far beyond them while requests sit in a 1-worker queue, the
  // backlog is answered as expirations, not run through the engine late.
  ServerFixture fx;
  VirtualClock clock;
  ServerConfig sc;
  sc.num_workers = 1;
  sc.queue_capacity = 64;
  sc.batch.max_batch_size = 2;
  sc.batch.max_queue_delay = std::chrono::milliseconds(5);
  sc.slo.deadline = {std::chrono::milliseconds(10),
                     std::chrono::milliseconds(10),
                     std::chrono::milliseconds(10)};
  sc.clock = &clock;
  Server server(sc);
  server.sessions().add_session("tiny", fx.fast, 1);
  server.start();

  std::atomic<std::size_t> expired{0}, completed{0};
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < 24; ++i)
    if (server.submit("tiny", LoadGenerator::make_input(kTinyShape, i),
                      [&](Response&& r) {
                        if (r.expired)
                          ++expired;
                        else
                          ++completed;
                      }) == Admission::kAccepted)
      ++accepted;
  // Push virtual time far past every deadline; the worker observes it at
  // its next poll and expires whatever is still queued.
  clock.advance(std::chrono::seconds(5));
  server.drain();
  server.stop();
  EXPECT_EQ(expired.load() + completed.load(), accepted);
  EXPECT_GT(expired.load(), 0u);  // the backlog could not all dispatch
  EXPECT_EQ(server.summary().total_expired(), expired.load());
}

// --- Fault tolerance: replicas, router, chaos harness -----------------------

std::uint64_t test_mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(ChaosScript, GeneratorIsDeterministicAndSorted) {
  ChaosScriptConfig cc;
  cc.seed = 42;
  cc.duration_seconds = 2.0;
  cc.replicas = 3;
  cc.crashes = 2;
  cc.stalls = 1;
  cc.poisons = 2;
  cc.slows = 1;
  const ChaosScript a = make_chaos_script(cc);
  const ChaosScript b = make_chaos_script(cc);
  // Crashes and slows come with a paired heal/clear event each.
  ASSERT_EQ(a.size(), 2 * cc.crashes + cc.stalls + cc.poisons + 2 * cc.slows);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_seconds, b[i].at_seconds);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].replica, b[i].replica);
    EXPECT_EQ(a[i].param, b[i].param);
    if (i > 0) EXPECT_GE(a[i].at_seconds, a[i - 1].at_seconds);
    EXPECT_GE(a[i].at_seconds, 0.0);
    EXPECT_LT(a[i].replica, cc.replicas);
  }
  std::size_t crashes = 0, heals = 0;
  for (const FaultEvent& e : a) {
    crashes += e.kind == FaultKind::kReplicaCrash;
    heals += e.kind == FaultKind::kReplicaHeal;
  }
  EXPECT_EQ(crashes, cc.crashes);
  EXPECT_EQ(heals, cc.crashes);  // every crash is healed
}

TEST(RequestQueue, PushRetryBypassesCapacityButNotClose) {
  RequestQueue q(1);
  ASSERT_EQ(q.try_push(make_request(0, 1)), Admission::kAccepted);
  // A retry re-push succeeds even at capacity (the rider was already
  // admitted once; bouncing it now would lose an accepted request).
  Request retry = make_request(0, 2);
  retry.attempt = 1;
  EXPECT_TRUE(q.push_retry(std::move(retry)));
  EXPECT_EQ(q.depth(), 2u);
  q.close();
  // After close() the worker must answer the rider itself: push_retry
  // refuses instead of dropping the request into a queue nobody drains.
  Request late = make_request(0, 3);
  late.attempt = 1;
  EXPECT_FALSE(q.push_retry(std::move(late)));
  BatchPolicy bp;
  bp.max_batch_size = 8;
  bp.max_queue_delay = std::chrono::microseconds(0);
  EXPECT_EQ(q.pop_micro_batch(bp).size(), 2u);  // pre-close riders drain
}

TEST(ReplicaHealth, BreakerQuarantineThenCanaryReadmission) {
  // Drives one replica through the full state machine on a virtual clock:
  // healthy -> (breaker trips) quarantined -> (backoff lapses) recovering
  // -> (canary successes) healthy, with the router picking a survivor in
  // between. No real time passes.
  ServerFixture fx;
  VirtualClock clock;
  ReplicaConfig rc;
  rc.breaker_failures = 2;
  rc.canary_successes = 2;
  rc.quarantine_backoff = std::chrono::milliseconds(10);
  ReplicaSet set(fx.fast, /*replicas=*/2, /*engine_threads=*/1, rc, &clock);
  RouterConfig rtc;
  rtc.replica = rc;
  Router router(rtc, &clock);
  const Clock::time_point far = clock.now() + std::chrono::hours(1);

  auto run_one = [&](std::uint64_t key) {
    std::vector<nn::Tensor> in;
    in.push_back(LoadGenerator::make_input(kTinyShape, key));
    return router.run(set, key, SloClass::kBatch, std::move(in), kNoReplica,
                      far, /*cancellable=*/false);
  };

  // A single crashed replica just gets routed around (that's the point of
  // the ring) — crash both so the breaker provably trips on each.
  const std::size_t owner =
      router.pick(set, 0, SloClass::kBatch, kNoReplica).value();
  set.replica(0).chaos_crash();
  set.replica(1).chaos_crash();

  // Failures accumulate round-robin as health degrades; two consecutive
  // failures per replica open its breaker.
  Router::Attempt a1 = run_one(0);
  EXPECT_FALSE(a1.ok);
  EXPECT_EQ(a1.replica, owner);
  std::size_t attempts = 1;
  while (attempts < 8 &&
         (set.replica(0).health() != ReplicaHealth::kQuarantined ||
          set.replica(1).health() != ReplicaHealth::kQuarantined)) {
    clock.advance(std::chrono::milliseconds(1));
    EXPECT_FALSE(run_one(0).ok);
    ++attempts;
  }
  EXPECT_EQ(set.replica(0).health(), ReplicaHealth::kQuarantined);
  EXPECT_EQ(set.replica(1).health(), ReplicaHealth::kQuarantined);
  // With every replica quarantined the router reports total outage rather
  // than hanging.
  Router::Attempt none = run_one(0);
  EXPECT_FALSE(none.ok);
  EXPECT_EQ(none.replica, kNoReplica);

  // Heal the faults and let the quarantine backoff lapse: the next refresh
  // moves the replicas to recovering and the router feeds them canary
  // probes until canary_successes readmits each.
  set.replica(0).chaos_heal();
  set.replica(1).chaos_heal();
  clock.advance(std::chrono::milliseconds(20));
  for (int i = 0; i < 6; ++i) {
    clock.advance(std::chrono::milliseconds(1));
    EXPECT_TRUE(run_one(0).ok);
  }
  EXPECT_EQ(set.replica(owner).health(), ReplicaHealth::kHealthy);

  const ReplicaSummary s = set.replica(owner).summarize(clock.now());
  EXPECT_GE(s.transitions, 3u);  // quarantined -> recovering -> healthy
  EXPECT_GE(s.canary_probes, 1u);
  EXPECT_GT(s.quarantine_seconds, 0.0);
  EXPECT_EQ(s.health, "healthy");
  EXPECT_GE(s.failures, 2u);
}

// Single-threaded virtual-clock chaos run: a RequestQueue drained through
// the Router over a 3-replica set, with a scripted crash+heal applied when
// virtual time crosses the event offsets. Every scheduling and routing
// decision is a pure function of (trace, crash_replica, knobs), so two runs
// must agree byte for byte — the replay contract of the chaos harness.
struct ChaosSimOutcome {
  std::size_t accepted = 0;
  std::size_t completed = 0;
  std::size_t expired = 0;
  std::size_t errors = 0;
  std::size_t retries = 0;
  std::size_t slo_met = 0;
  std::uint64_t checksum = 0;  // order-independent logits digest
  std::array<std::size_t, 10> met_window{};
  std::vector<ReplicaSummary> replicas;
};

ChaosSimOutcome simulate_chaos(
    const Trace& trace, std::shared_ptr<const core::CompiledModel> model,
    std::size_t crash_replica) {
  constexpr auto kService = std::chrono::milliseconds(2);
  const std::array<Clock::duration, kNumSloClasses> kDeadline = {
      std::chrono::milliseconds(60), std::chrono::milliseconds(120),
      std::chrono::milliseconds(250)};
  VirtualClock clock;
  const Clock::time_point t0 = clock.now();
  ReplicaConfig rc;
  rc.breaker_failures = 2;
  rc.canary_successes = 2;
  rc.quarantine_backoff = std::chrono::milliseconds(30);
  ReplicaSet set(std::move(model), /*replicas=*/3, /*engine_threads=*/1, rc,
                 &clock);
  RouterConfig rtc;
  rtc.replica = rc;
  Router router(rtc, &clock);
  RequestQueue q(512, AdmissionPolicy{}, &clock);
  BatchPolicy bp;
  bp.max_batch_size = 4;
  bp.max_queue_delay = std::chrono::microseconds(0);

  const double span = trace.events.back().t_seconds;
  const Clock::time_point t_crash =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(0.3 * span));
  const Clock::time_point t_heal =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(0.55 * span));
  const Clock::duration window = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(span / 8.0));
  bool crashed = false, healed = false;

  auto to_duration = [](double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  };
  ChaosSimOutcome out;
  std::size_t next = 0;
  std::vector<Request> expired;
  while (next < trace.events.size() || q.depth() > 0) {
    if (!crashed && clock.now() >= t_crash) {
      set.replica(crash_replica).chaos_crash();
      crashed = true;
    }
    if (!healed && clock.now() >= t_heal) {
      set.replica(crash_replica).chaos_heal();
      healed = true;
    }
    while (next < trace.events.size() &&
           t0 + to_duration(trace.events[next].t_seconds) <= clock.now()) {
      const TraceEvent& e = trace.events[next];
      Request r = make_slo_request(e.slo, next);
      r.input = LoadGenerator::make_input(kTinyShape, next);
      r.deadline = t0 + to_duration(e.t_seconds) +
                   kDeadline[static_cast<std::size_t>(e.slo)];
      if (q.try_push(std::move(r)) == Admission::kAccepted) ++out.accepted;
      ++next;
    }
    if (q.depth() == 0) {
      clock.advance_to(t0 + to_duration(trace.events[next].t_seconds));
      continue;
    }
    expired.clear();
    std::vector<Request> batch = q.pop_micro_batch(bp, &expired);
    out.expired += expired.size();
    if (batch.empty()) continue;
    std::vector<nn::Tensor> inputs;
    inputs.reserve(batch.size());
    for (const Request& r : batch) inputs.push_back(r.input);  // keep for retry
    const Request& front = batch.front();
    const std::size_t avoid =
        front.attempt > 0 ? front.last_replica : kNoReplica;
    Router::Attempt a =
        router.run(set, front.id, front.slo, std::move(inputs), avoid,
                   Clock::time_point::max(), /*cancellable=*/false);
    clock.advance(kService);
    if (a.ok) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ++out.completed;
        std::uint32_t word = 0;
        std::memcpy(&word, a.outputs[i].data(), sizeof word);
        out.checksum ^= test_mix64(batch[i].id * 0x10001 + word);
        if (batch[i].deadline >= clock.now()) {
          ++out.slo_met;
          const auto w = static_cast<std::size_t>(
              (clock.now() - t0) / window);
          ++out.met_window[std::min(w, out.met_window.size() - 1)];
        }
      }
    } else {
      const std::array<std::size_t, kNumSloClasses> budget{1, 2, 3};
      for (Request& r : batch) {
        if (r.attempt < budget[static_cast<std::size_t>(r.slo)]) {
          ++r.attempt;
          r.last_replica = a.replica;
          ++out.retries;
          EXPECT_TRUE(q.push_retry(std::move(r)));
        } else {
          ++out.errors;
        }
      }
      clock.advance(router.backoff(front.attempt, front.id));
    }
  }
  out.replicas = set.summarize(clock.now());
  return out;
}

TEST(ChaosAcceptance, CrashOneOfThreeMidFlashCrowdIsLosslessAndReplays) {
  // ISSUE 8 acceptance: kill 1 of 3 replicas in the middle of a flash
  // crowd. Zero accepted requests may be lost, goodput must survive the
  // crash window and recover after the heal, the crashed replica must be
  // quarantined and readmitted through canary probes, and the entire run
  // must replay bit-identically.
  ServerFixture fx;
  TraceConfig tc;
  tc.arrivals = ArrivalProcess::kFlash;
  tc.rate_rps = 300.0;
  tc.flash_rate_rps = 900.0;
  tc.flash_start_seconds = 0.1;
  tc.flash_duration_seconds = 0.2;
  tc.requests = 240;
  tc.sessions = {"tiny"};
  tc.class_weights = {0.25, 0.5, 0.25};
  tc.seed = 11;
  const Trace trace = make_trace(tc);

  const ChaosSimOutcome run1 = simulate_chaos(trace, fx.fast, 1);

  // Conservation: every accepted request was answered exactly once.
  EXPECT_EQ(run1.completed + run1.expired + run1.errors, run1.accepted);
  // The survivors absorbed the crashed replica's keys: nothing had to be
  // terminally failed, and retries actually happened.
  EXPECT_EQ(run1.errors, 0u);
  EXPECT_GT(run1.retries, 0u);
  // Goodput: the crash costs at most a modest dip (instant failover keeps
  // the other 2/3 of keys untouched) and the tail of the run recovers.
  EXPECT_GE(run1.slo_met, run1.accepted * 2 / 3);
  EXPECT_GT(run1.met_window[7], 0u);  // still meeting deadlines at the end

  // The crashed replica went through the full lifecycle and came back.
  const ReplicaSummary& crashed = run1.replicas[1];
  EXPECT_GE(crashed.transitions, 3u);
  EXPECT_GE(crashed.canary_probes, 1u);
  EXPECT_GT(crashed.quarantine_seconds, 0.0);
  EXPECT_EQ(crashed.health, "healthy");
  // The survivors took real traffic throughout.
  EXPECT_GT(run1.replicas[0].batches, 0u);
  EXPECT_GT(run1.replicas[2].batches, 0u);

  // Bit-identical replay: same trace, same script, same everything.
  const ChaosSimOutcome run2 = simulate_chaos(trace, fx.fast, 1);
  EXPECT_EQ(run2.checksum, run1.checksum);
  EXPECT_EQ(run2.accepted, run1.accepted);
  EXPECT_EQ(run2.completed, run1.completed);
  EXPECT_EQ(run2.expired, run1.expired);
  EXPECT_EQ(run2.errors, run1.errors);
  EXPECT_EQ(run2.retries, run1.retries);
  EXPECT_EQ(run2.slo_met, run1.slo_met);
  EXPECT_EQ(run2.met_window, run1.met_window);
  ASSERT_EQ(run2.replicas.size(), run1.replicas.size());
  for (std::size_t r = 0; r < run1.replicas.size(); ++r) {
    EXPECT_EQ(run2.replicas[r].batches, run1.replicas[r].batches);
    EXPECT_EQ(run2.replicas[r].failures, run1.replicas[r].failures);
    EXPECT_EQ(run2.replicas[r].transitions, run1.replicas[r].transitions);
    EXPECT_EQ(run2.replicas[r].canary_probes,
              run1.replicas[r].canary_probes);
    EXPECT_DOUBLE_EQ(run2.replicas[r].quarantine_seconds,
                     run1.replicas[r].quarantine_seconds);
  }
}

TEST(FaultProperty, ExactlyOnceUnderRetriesHedgesAndChaosAcrossSeeds) {
  // Real multi-threaded server, 3 replicas, generated chaos script with
  // crashes, stalls, poisons and slows, hedging on: across seeds, every
  // accepted request is answered exactly once (success or error), and the
  // fault counters stay internally consistent.
  for (const std::uint64_t seed : {5u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ServerFixture fx;
    ServerConfig sc;
    sc.num_workers = 2;
    sc.queue_capacity = 64;
    sc.batch.max_batch_size = 4;
    sc.batch.max_queue_delay = std::chrono::microseconds(300);
    sc.replicas = 3;
    sc.router.hedge_interactive = true;
    sc.router.hedge_delay = std::chrono::milliseconds(2);
    sc.router.retry_backoff = std::chrono::microseconds(100);
    sc.router.replica.quarantine_backoff = std::chrono::milliseconds(5);
    ChaosScriptConfig cc;
    cc.seed = seed;
    cc.duration_seconds = 0.05;  // every event is due within ~65 ms
    cc.replicas = 3;
    cc.crashes = 1;
    cc.stalls = 1;
    cc.poisons = 2;
    cc.slows = 1;
    sc.chaos = make_chaos_script(cc);
    Server server(sc);
    server.sessions().add_session("tiny", fx.fast, 1);
    server.start();

    constexpr std::size_t kN = 120;
    std::vector<std::atomic<std::uint32_t>> answers(kN);
    std::size_t accepted = 0;
    std::size_t ok_responses = 0;
    std::mutex ok_mu;
    auto send_one = [&](std::size_t i) {
      const SloClass slo = static_cast<SloClass>(i % kNumSloClasses);
      if (server.submit(
              "tiny", LoadGenerator::make_input(kTinyShape, i),
              [&answers, &ok_mu, &ok_responses, i](Response&& r) {
                ++answers[i];
                if (r.ok()) {
                  std::lock_guard<std::mutex> lk(ok_mu);
                  ++ok_responses;
                }
              },
              slo) == Admission::kAccepted)
        ++accepted;
    };
    // First wave lands inside the chaos window; the pause pushes real time
    // past every scripted offset so the second wave's worker polls fire
    // whatever is left (workers only poll while traffic flows).
    for (std::size_t i = 0; i < kN / 2; ++i) {
      send_one(i);
      if (i % 8 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    for (std::size_t i = kN / 2; i < kN; ++i) send_one(i);
    server.drain();
    server.stop();

    std::size_t answered = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_LE(answers[i].load(), 1u) << "request " << i;
      answered += answers[i].load();
    }
    EXPECT_EQ(answered, accepted);
    const ServerSummary summary = server.summary();
    EXPECT_EQ(summary.total_completed(), accepted);
    EXPECT_GT(ok_responses, 0u);
    EXPECT_GE(summary.total_retries, summary.total_failovers);
    EXPECT_GE(summary.total_hedges, summary.total_hedges_won);
    EXPECT_GE(summary.total_hedges, summary.total_hedges_wasted);
    ASSERT_EQ(summary.replicas.size(), 3u);
    for (const ReplicaSummary& r : summary.replicas)
      EXPECT_GE(r.quarantine_seconds, 0.0);
    // Every scripted fault fired: the second wave polled past the window.
    EXPECT_EQ(server.injector().applied(), server.injector().total());
  }
}

TEST(Router, HedgeWinsAroundSlowOwner) {
  // 2 replicas, one chaos-slowed by 30 ms, hedge delay 1 ms: interactive
  // requests owned by the slow replica are hedged onto the fast one and
  // the hedge wins. Answers stay bitwise correct either way.
  ServerFixture fx;
  ServerConfig sc;
  sc.num_workers = 2;
  sc.queue_capacity = 64;
  sc.batch.max_batch_size = 2;
  sc.batch.max_queue_delay = std::chrono::microseconds(100);
  sc.replicas = 2;
  sc.router.hedge_interactive = true;
  sc.router.hedge_delay = std::chrono::milliseconds(1);
  Server server(sc);
  const std::size_t idx = server.sessions().add_session("tiny", fx.fast, 1);
  server.sessions().replicas(idx).replica(0).chaos_slow(
      std::chrono::milliseconds(30));
  server.start();

  core::DeepCamConfig cfg;
  cfg.cam_rows = 16;
  core::DeepCamAccelerator acc(*fx.model, cfg);
  for (std::uint64_t i = 0; i < 16; ++i) {
    const nn::Tensor input = LoadGenerator::make_input(kTinyShape, i);
    Response r = server.run("tiny", input, SloClass::kInteractive);
    ASSERT_TRUE(r.ok());
    expect_bitwise_equal(r.logits, acc.run(input));
  }
  server.stop();
  const ServerSummary summary = server.summary();
  // With 16 distinct routing keys over 2 replicas, some land on the slow
  // owner; those must have hedged, and the fast replica's copy won.
  EXPECT_GE(summary.total_hedges, 1u);
  EXPECT_GE(summary.total_hedges_won, 1u);
  EXPECT_LE(summary.total_hedges_won, summary.total_hedges);
}

TEST(Server, AllReplicasCrashedAnswersEveryRequestWithError) {
  // Every replica dead: the server must not lose or hang a single request
  // — each accepted one is answered with a terminal error after its retry
  // budget is spent.
  ServerFixture fx;
  ServerConfig sc;
  sc.num_workers = 2;
  sc.queue_capacity = 32;
  sc.batch.max_batch_size = 4;
  sc.batch.max_queue_delay = std::chrono::microseconds(100);
  sc.replicas = 2;
  sc.router.retry_backoff = std::chrono::microseconds(50);
  Server server(sc);
  const std::size_t idx = server.sessions().add_session("tiny", fx.fast, 1);
  server.sessions().replicas(idx).replica(0).chaos_crash();
  server.sessions().replicas(idx).replica(1).chaos_crash();
  server.start();

  std::atomic<std::size_t> answered{0}, failed{0};
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < 12; ++i)
    if (server.submit("tiny", LoadGenerator::make_input(kTinyShape, i),
                      [&](Response&& r) {
                        ++answered;
                        if (!r.ok()) ++failed;
                      }) == Admission::kAccepted)
      ++accepted;
  server.drain();
  server.stop();
  EXPECT_EQ(answered.load(), accepted);
  EXPECT_EQ(failed.load(), accepted);  // nothing could possibly succeed
  const ServerSummary summary = server.summary();
  EXPECT_EQ(summary.total_completed(), accepted);
  EXPECT_EQ(summary.sessions[0].errors, accepted);
  EXPECT_GT(summary.total_retries, 0u);
}

}  // namespace
}  // namespace deepcam::serve
