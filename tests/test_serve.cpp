// Serving subsystem tests: queue admission/backpressure, micro-batch
// coalescing, multi-model sessions, end-to-end correctness against the
// single-sample accelerator, and the serving determinism contract — a
// seeded trace replayed at 1 and 8 server workers yields bitwise-identical
// per-request outputs (order-independent).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>

#include "core/accelerator.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "serve/batcher.hpp"
#include "serve/loadgen.hpp"
#include "serve/request_queue.hpp"

namespace deepcam::serve {
namespace {

std::unique_ptr<nn::Model> tiny_cnn(std::uint64_t seed) {
  auto m = std::make_unique<nn::Model>("tiny_cnn");
  m->add(std::make_unique<nn::Conv2D>("conv1",
                                      nn::ConvSpec{1, 4, 3, 3, 1, 0}, seed));
  m->add(std::make_unique<nn::ReLU>("relu1"));
  m->add(std::make_unique<nn::MaxPool>("pool1", 2, 2));
  m->add(std::make_unique<nn::Flatten>("flat"));
  m->add(std::make_unique<nn::Linear>("fc", 4 * 3 * 3, 5, seed + 1));
  return m;
}

constexpr nn::Shape kTinyShape{1, 1, 8, 8};

void expect_bitwise_equal(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_TRUE(a.shape() == b.shape());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)));
}

Request make_request(std::size_t session, std::uint64_t id = 0) {
  Request r;
  r.id = id;
  r.session = session;
  r.input = LoadGenerator::make_input(kTinyShape, id);
  return r;
}

// --- RequestQueue ---------------------------------------------------------

TEST(RequestQueue, TryPushRejectsWhenFull) {
  RequestQueue q(2);
  EXPECT_EQ(q.try_push(make_request(0)), Admission::kAccepted);
  EXPECT_EQ(q.try_push(make_request(0)), Admission::kAccepted);
  EXPECT_EQ(q.try_push(make_request(0)), Admission::kRejectedFull);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.max_depth(), 2u);
}

TEST(RequestQueue, CloseRejectsAndDrains) {
  RequestQueue q(4);
  ASSERT_EQ(q.try_push(make_request(0)), Admission::kAccepted);
  q.close();
  EXPECT_EQ(q.try_push(make_request(0)), Admission::kRejectedClosed);
  BatchPolicy policy;
  // Pending request still drains...
  EXPECT_EQ(q.pop_micro_batch(policy).size(), 1u);
  // ...then pop returns empty (the worker-exit signal).
  EXPECT_TRUE(q.pop_micro_batch(policy).empty());
}

TEST(RequestQueue, MicroBatchFillsToMaxWithoutWaiting) {
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_size = 4;
  policy.max_queue_delay = std::chrono::microseconds(60'000'000);  // no-op
  for (std::uint64_t i = 0; i < 6; ++i)
    ASSERT_EQ(q.try_push(make_request(0, i)), Admission::kAccepted);
  // A full batch is available: pop must not wait for the delay bound.
  const auto t0 = Clock::now();
  const auto batch = q.pop_micro_batch(policy);
  EXPECT_LT(std::chrono::duration<double>(Clock::now() - t0).count(), 10.0);
  ASSERT_EQ(batch.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].id, i);  // FIFO
  BatchPolicy flush = policy;  // the 2-request tail leaves on its delay bound
  flush.max_queue_delay = std::chrono::microseconds(0);
  EXPECT_EQ(q.pop_micro_batch(flush).size(), 2u);
}

TEST(RequestQueue, MicroBatchIsSingleSessionAndPreservesOtherSessions) {
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_size = 8;
  policy.max_queue_delay = std::chrono::microseconds(0);  // flush instantly
  ASSERT_EQ(q.try_push(make_request(0, 1)), Admission::kAccepted);
  ASSERT_EQ(q.try_push(make_request(1, 2)), Admission::kAccepted);
  ASSERT_EQ(q.try_push(make_request(0, 3)), Admission::kAccepted);
  // Head is session 0: coalesces ids {1,3} around the session-1 request.
  const auto batch0 = q.pop_micro_batch(policy);
  ASSERT_EQ(batch0.size(), 2u);
  EXPECT_EQ(batch0[0].session, 0u);
  EXPECT_EQ(batch0[0].id, 1u);
  EXPECT_EQ(batch0[1].id, 3u);
  // Session 1 kept its place.
  const auto batch1 = q.pop_micro_batch(policy);
  ASSERT_EQ(batch1.size(), 1u);
  EXPECT_EQ(batch1[0].session, 1u);
}

TEST(RequestQueue, DelayBoundDispatchesPartialBatch) {
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_size = 8;
  policy.max_queue_delay = std::chrono::microseconds(2000);
  ASSERT_EQ(q.try_push(make_request(0, 7)), Admission::kAccepted);
  const auto t0 = Clock::now();
  const auto batch = q.pop_micro_batch(policy);  // waits out the delay
  const double waited =
      std::chrono::duration<double>(Clock::now() - t0).count();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 7u);
  EXPECT_LT(waited, 1.0);  // delay-bounded, not stuck until a full batch
}

TEST(RequestQueue, LateArrivalsJoinTheWaitingBatch) {
  RequestQueue q(16);
  BatchPolicy policy;
  policy.max_batch_size = 2;
  policy.max_queue_delay = std::chrono::microseconds(10'000'000);
  ASSERT_EQ(q.try_push(make_request(0, 1)), Admission::kAccepted);
  std::thread late([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(q.try_push(make_request(0, 2)), Admission::kAccepted);
  });
  // Blocks on the partial batch until the late arrival completes it (well
  // before the 10 s delay bound).
  const auto batch = q.pop_micro_batch(policy);
  late.join();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 2u);
}

TEST(DynamicBatcher, WrapsQueueWithPolicy) {
  RequestQueue q(8);
  BatchPolicy policy;
  policy.max_batch_size = 3;
  policy.max_queue_delay = std::chrono::microseconds(0);
  DynamicBatcher batcher(q, policy);
  EXPECT_EQ(batcher.policy().max_batch_size, 3u);
  for (std::uint64_t i = 0; i < 3; ++i)
    ASSERT_EQ(q.try_push(make_request(0, i)), Admission::kAccepted);
  EXPECT_EQ(batcher.next().size(), 3u);
}

// --- Server end-to-end ----------------------------------------------------

struct ServerFixture {
  std::unique_ptr<nn::Model> model = tiny_cnn(90);
  std::shared_ptr<const core::CompiledModel> fast;
  std::shared_ptr<const core::CompiledModel> small;

  ServerFixture() {
    core::DeepCamConfig cfg;
    cfg.cam_rows = 16;
    fast = std::make_shared<const core::CompiledModel>(*model, cfg);
    core::DeepCamConfig cfg_small = cfg;
    cfg_small.default_hash_bits = 256;
    small = std::make_shared<const core::CompiledModel>(*model, cfg_small);
  }

  std::unique_ptr<Server> make_server(std::size_t workers,
                                      std::size_t capacity = 64) {
    ServerConfig sc;
    sc.num_workers = workers;
    sc.queue_capacity = capacity;
    sc.batch.max_batch_size = 4;
    sc.batch.max_queue_delay = std::chrono::microseconds(500);
    auto server = std::make_unique<Server>(sc);
    server->sessions().add_session("tiny", fast, /*engine_threads=*/2);
    server->sessions().add_session("tiny-k256", small, /*engine_threads=*/2);
    server->start();
    return server;
  }
};

TEST(SessionManager, NamedLookupAndDuplicateRejection) {
  ServerFixture fx;
  SessionManager mgr;
  EXPECT_EQ(mgr.add_session("a", fx.fast, 1), 0u);
  EXPECT_EQ(mgr.add_session("b", fx.small, 1), 1u);
  EXPECT_EQ(mgr.count(), 2u);
  EXPECT_EQ(mgr.find("a").value(), 0u);
  EXPECT_EQ(mgr.find("b").value(), 1u);
  EXPECT_FALSE(mgr.find("c").has_value());
  EXPECT_EQ(mgr.name(1), "b");
  EXPECT_THROW(mgr.add_session("a", fx.fast, 1), Error);
  EXPECT_THROW(mgr.add_session("", fx.fast, 1), Error);
}

TEST(Server, BlockingRunMatchesAcceleratorBitwisePerSession) {
  ServerFixture fx;
  auto server = fx.make_server(2);
  core::DeepCamConfig cfg;
  cfg.cam_rows = 16;
  core::DeepCamAccelerator acc(*fx.model, cfg);
  cfg.default_hash_bits = 256;
  core::DeepCamAccelerator acc_small(*fx.model, cfg);

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const nn::Tensor input = LoadGenerator::make_input(kTinyShape, seed);
    Response r = server->run("tiny", input);
    ASSERT_TRUE(r.ok());
    expect_bitwise_equal(r.logits, acc.run(input));
    EXPECT_GT(r.total_seconds, 0.0);
    EXPECT_GE(r.batch_size, 1u);
    Response r2 = server->run("tiny-k256", input);
    ASSERT_TRUE(r2.ok());
    expect_bitwise_equal(r2.logits, acc_small.run(input));
  }
  server->stop();
  const ServerSummary summary = server->summary();
  EXPECT_EQ(summary.total_completed(), 12u);
  EXPECT_EQ(summary.sessions.size(), 2u);
  EXPECT_EQ(summary.sessions[0].name, "tiny");
  EXPECT_EQ(summary.sessions[0].completed, 6u);
  EXPECT_EQ(summary.sessions[0].errors, 0u);
  EXPECT_GT(summary.sessions[0].latency_p99_ms, 0.0);
  EXPECT_GE(summary.sessions[0].latency_p99_ms,
            summary.sessions[0].latency_p50_ms);
}

TEST(Server, UnknownSessionAndStoppedServerAreRejected) {
  ServerFixture fx;
  auto server = fx.make_server(1);
  EXPECT_EQ(server->submit("nope", LoadGenerator::make_input(kTinyShape, 0),
                           nullptr),
            Admission::kRejectedUnknownSession);
  Response r = server->run("nope", LoadGenerator::make_input(kTinyShape, 0));
  EXPECT_FALSE(r.ok());
  server->stop();
  EXPECT_EQ(server->submit("tiny", LoadGenerator::make_input(kTinyShape, 0),
                           nullptr),
            Admission::kRejectedClosed);
  // Unknown-session turn-aways are visible in the summary even though they
  // resolve to no per-session row.
  const ServerSummary summary = server->summary();
  EXPECT_EQ(summary.unknown_session_rejected, 2u);
  EXPECT_EQ(summary.total_rejected(), 2u);
}

TEST(Server, BackpressureRejectsInsteadOfBlocking) {
  // One worker, tiny queue: flood submit() far beyond capacity and verify
  // the overflow is rejected (kRejectedFull), everything accepted is
  // answered, and the server survives.
  ServerFixture fx;
  auto server = fx.make_server(1, /*capacity=*/4);
  std::atomic<std::size_t> done{0};
  std::size_t accepted = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Admission verdict =
        server->submit("tiny", LoadGenerator::make_input(kTinyShape, i),
                       [&done](Response&&) { ++done; });
    if (verdict == Admission::kAccepted)
      ++accepted;
    else if (verdict == Admission::kRejectedFull)
      ++rejected;
  }
  server->drain();
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(done.load(), accepted);
  server->stop();
  const ServerSummary summary = server->summary();
  EXPECT_EQ(summary.sessions[0].completed, accepted);
  EXPECT_EQ(summary.sessions[0].rejected, rejected);
  EXPECT_LE(summary.max_queue_depth, 4u);
}

TEST(Server, StopAnswersEveryAcceptedRequest) {
  ServerFixture fx;
  auto server = fx.make_server(2, /*capacity=*/128);
  std::atomic<std::size_t> done{0};
  std::size_t accepted = 0;
  for (std::uint64_t i = 0; i < 32; ++i)
    if (server->submit("tiny", LoadGenerator::make_input(kTinyShape, i),
                       [&done](Response&&) { ++done; }) ==
        Admission::kAccepted)
      ++accepted;
  server->stop();  // close + drain + join, without an explicit drain()
  EXPECT_EQ(done.load(), accepted);
}

TEST(Server, MicroBatchingCoalescesBurst) {
  // A burst submitted while one worker is busy must ride in micro-batches
  // (mean batch size > 1), not one engine call per request.
  ServerFixture fx;
  ServerConfig sc;
  sc.num_workers = 1;
  sc.queue_capacity = 64;
  sc.batch.max_batch_size = 8;
  sc.batch.max_queue_delay = std::chrono::microseconds(4000);
  Server server(sc);
  server.sessions().add_session("tiny", fx.fast, 1);
  server.start();
  for (std::uint64_t i = 0; i < 32; ++i)
    server.submit("tiny", LoadGenerator::make_input(kTinyShape, i), nullptr);
  server.drain();
  server.stop();
  const ServerSummary summary = server.summary();
  EXPECT_EQ(summary.sessions[0].completed, 32u);
  EXPECT_GT(summary.sessions[0].mean_batch_size, 1.0);
  EXPECT_LE(summary.sessions[0].max_batch_size, 8u);
  EXPECT_LT(summary.sessions[0].batches, 32u);
}

// --- LoadGenerator + determinism -------------------------------------------

TEST(LoadGenerator, TraceIsDeterministicAndWellFormed) {
  TraceConfig tc;
  tc.requests = 50;
  tc.rate_rps = 500.0;
  tc.sessions = {"a", "b"};
  tc.seed = 11;
  const Trace t1 = make_trace(tc);
  const Trace t2 = make_trace(tc);
  ASSERT_EQ(t1.events.size(), 50u);
  double prev = 0.0;
  bool saw_both = false;
  for (std::size_t i = 0; i < t1.events.size(); ++i) {
    EXPECT_EQ(t1.events[i].t_seconds, t2.events[i].t_seconds);
    EXPECT_EQ(t1.events[i].session, t2.events[i].session);
    EXPECT_EQ(t1.events[i].input_seed, t2.events[i].input_seed);
    EXPECT_GT(t1.events[i].t_seconds, prev);  // strictly increasing
    prev = t1.events[i].t_seconds;
    if (t1.events[i].session != t1.events[0].session) saw_both = true;
  }
  EXPECT_TRUE(saw_both);

  tc.seed = 12;
  const Trace t3 = make_trace(tc);
  EXPECT_NE(t1.events[0].input_seed, t3.events[0].input_seed);

  tc.arrivals = ArrivalProcess::kBursty;
  tc.burst_rate_rps = 5000.0;
  const Trace bursty = make_trace(tc);
  EXPECT_EQ(bursty.events.size(), 50u);
  EXPECT_GT(bursty.duration_seconds(), 0.0);
}

/// Replays one seeded trace and returns the per-event logits.
std::vector<nn::Tensor> replay_logits(ServerFixture& fx, const Trace& trace,
                                      std::size_t workers,
                                      ReplayOptions opts) {
  auto server = fx.make_server(workers);
  LoadGenerator loadgen(*server, {kTinyShape, kTinyShape});
  const LoadReport load = loadgen.replay(trace, opts);
  server->drain();
  server->stop();
  EXPECT_EQ(load.sent, trace.events.size());
  EXPECT_EQ(load.rejected, 0u);
  EXPECT_EQ(load.errors, 0u);
  EXPECT_GT(load.achieved_rps, 0.0);
  std::vector<nn::Tensor> logits;
  logits.reserve(load.records.size());
  for (const RequestRecord& rec : load.records) {
    EXPECT_TRUE(rec.completed);
    EXPECT_TRUE(rec.response.ok());
    logits.push_back(rec.response.logits);
  }
  return logits;
}

TEST(LoadGenerator, SeededReplayIsBitwiseStableAcrossWorkerCounts) {
  // The ISSUE 4 determinism contract: the same seeded trace, replayed
  // closed-loop at 1 and 8 server workers, produces bitwise-identical
  // per-request outputs (order-independent), each equal to the
  // single-sample accelerator on the same deterministic input.
  ServerFixture fx;
  TraceConfig tc;
  tc.requests = 24;
  tc.rate_rps = 2000.0;
  tc.sessions = {"tiny", "tiny-k256"};
  tc.seed = 21;
  const Trace trace = make_trace(tc);

  ReplayOptions closed;
  closed.mode = ReplayOptions::Mode::kClosedLoop;
  closed.closed_loop_clients = 6;
  const auto logits_1w = replay_logits(fx, trace, 1, closed);
  const auto logits_8w = replay_logits(fx, trace, 8, closed);

  core::DeepCamConfig cfg;
  cfg.cam_rows = 16;
  core::DeepCamAccelerator acc(*fx.model, cfg);
  cfg.default_hash_bits = 256;
  core::DeepCamAccelerator acc_small(*fx.model, cfg);

  ASSERT_EQ(logits_1w.size(), trace.events.size());
  ASSERT_EQ(logits_8w.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    expect_bitwise_equal(logits_1w[i], logits_8w[i]);
    const TraceEvent& e = trace.events[i];
    const nn::Tensor input =
        LoadGenerator::make_input(kTinyShape, e.input_seed);
    expect_bitwise_equal(
        logits_1w[i],
        e.session == 0 ? acc.run(input) : acc_small.run(input));
  }
}

TEST(LoadGenerator, OpenLoopReplayDeliversEverythingUnderBackpressure) {
  // Open-loop at a rate far beyond capacity with a small queue: some
  // requests get rejected (that is the point of admission control), every
  // accepted one completes, and the latency histogram is populated.
  ServerFixture fx;
  auto server = fx.make_server(2, /*capacity=*/8);
  TraceConfig tc;
  tc.requests = 48;
  tc.rate_rps = 20000.0;
  tc.sessions = {"tiny"};
  tc.seed = 31;
  LoadGenerator loadgen(*server, {kTinyShape});
  ReplayOptions opts;  // open loop
  const LoadReport load = loadgen.replay(make_trace(tc), opts);
  server->drain();
  server->stop();
  EXPECT_EQ(load.sent + load.rejected, 48u);
  EXPECT_EQ(load.errors, 0u);
  EXPECT_EQ(load.latency.count(), load.sent);
  if (load.sent > 0) {
    EXPECT_GT(load.percentile_ms(50), 0.0);
    EXPECT_GE(load.percentile_ms(99), load.percentile_ms(50));
  }
  const ServerSummary summary = server->summary();
  EXPECT_EQ(summary.sessions[0].completed, load.sent);
  EXPECT_EQ(summary.sessions[0].rejected, load.rejected);
}

}  // namespace
}  // namespace deepcam::serve
