#include "core/context.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace deepcam::core {
namespace {

TEST(Context, NormQuantizedToMiniFloat) {
  ContextGenerator gen(4, 1);
  std::vector<float> v = {3.0f, 4.0f, 0.0f, 0.0f};
  const Context c = gen.make_context(v);
  EXPECT_DOUBLE_EQ(c.exact_norm, 5.0);
  EXPECT_EQ(c.norm(), 5.0);  // 5.0 is exactly representable in E4M3
  EXPECT_EQ(c.bits.size(), hash::kMaxHashBits);
}

TEST(Context, NormQuantizationErrorBounded) {
  ContextGenerator gen(16, 2);
  deepcam::Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    std::vector<float> v(16);
    for (auto& x : v) x = static_cast<float>(rng.gaussian());
    const Context c = gen.make_context(v);
    EXPECT_NEAR(c.norm(), c.exact_norm, c.exact_norm * 0.0625 + 1e-6);
  }
}

TEST(Context, WeightContextsOnePerKernel) {
  nn::Conv2D conv("c", nn::ConvSpec{2, 5, 3, 3, 1, 1}, 4);
  ContextGenerator gen(conv.spec().patch_len(), 5);
  const auto ctxs = gen.weight_contexts(conv);
  ASSERT_EQ(ctxs.size(), 5u);
  // Each context's norm equals the L2 norm of that kernel.
  for (std::size_t oc = 0; oc < 5; ++oc) {
    double s = 0.0;
    for (std::size_t i = 0; i < 18; ++i) {
      const float w = conv.weights()[oc * 18 + i];
      s += double(w) * w;
    }
    EXPECT_NEAR(ctxs[oc].exact_norm, std::sqrt(s), 1e-6);
  }
}

TEST(Context, LinearWeightContexts) {
  nn::Linear fc("f", 8, 3, 6);
  ContextGenerator gen(8, 7);
  const auto ctxs = gen.weight_contexts(fc);
  EXPECT_EQ(ctxs.size(), 3u);
}

TEST(Context, ActivationContextsPatchOrder) {
  // Patch (oy, ox) order must match the conv output layout.
  nn::ConvSpec spec{1, 1, 2, 2, 1, 0};
  ContextGenerator gen(spec.patch_len(), 8);
  nn::Tensor in({1, 1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) in[i] = static_cast<float>(i + 1);
  const auto ctxs = gen.activation_contexts(in, spec);
  ASSERT_EQ(ctxs.size(), 4u);  // 2x2 output positions
  // Patch (0,0) = {1,2,4,5}: norm sqrt(1+4+16+25).
  EXPECT_NEAR(ctxs[0].exact_norm, std::sqrt(46.0), 1e-5);
  // Patch (1,1) = {5,6,8,9}.
  EXPECT_NEAR(ctxs[3].exact_norm, std::sqrt(25.0 + 36 + 64 + 81), 1e-5);
}

TEST(Context, FlatActivationContext) {
  ContextGenerator gen(12, 9);
  nn::Tensor in({1, 3, 2, 2});
  in.fill(2.0f);
  const Context c = gen.activation_context_flat(in);
  EXPECT_NEAR(c.exact_norm, std::sqrt(12.0 * 4.0), 1e-5);
}

TEST(Context, DimensionMismatchThrows) {
  ContextGenerator gen(4, 10);
  std::vector<float> wrong(5, 0.0f);
  EXPECT_THROW(gen.make_context(wrong), deepcam::Error);
  nn::Tensor in({1, 2, 2, 2});
  EXPECT_THROW(gen.activation_context_flat(in), deepcam::Error);
}

TEST(Context, LayerHashSeedDistinctPerNode) {
  const auto s0 = layer_hash_seed(42, 0);
  const auto s1 = layer_hash_seed(42, 1);
  const auto s0b = layer_hash_seed(42, 0);
  EXPECT_EQ(s0, s0b);
  EXPECT_NE(s0, s1);
  EXPECT_NE(layer_hash_seed(1, 0), layer_hash_seed(2, 0));
}

TEST(Context, SameSeedSameSignature) {
  ContextGenerator a(8, 77), b(8, 77);
  std::vector<float> v = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(a.make_context(v).bits == b.make_context(v).bits);
}

// ---- SoA ContextBatch pipeline: must match the per-Context reference ----

/// Full equivalence of one batch entry against a reference Context:
/// signature words, minifloat norm code, exact norm (bitwise).
void expect_ctx_equal(const ContextBatch& batch, std::size_t i,
                      const Context& ref) {
  ASSERT_EQ(batch.sig_bits(), ref.bits.size());
  for (std::size_t w = 0; w < batch.words_per_sig(); ++w)
    ASSERT_EQ(batch.sig(i)[w], ref.bits.data()[w]) << "ctx " << i;
  EXPECT_EQ(batch.norm_code(i), ref.norm_code);
  EXPECT_EQ(batch.exact_norm(i), ref.exact_norm);
  const ContextRef view = batch[i];
  EXPECT_EQ(view.norm(), ref.norm());
}

TEST(ContextBatch, ActivationContextsMatchScalarPath) {
  nn::ConvSpec spec{2, 4, 3, 3, 1, 1};
  ContextGenerator gen(spec.patch_len(), 11);
  nn::Tensor in({1, 2, 5, 5});
  Rng rng(12);
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = (i % 4 == 0) ? 0.0f : static_cast<float>(rng.gaussian());
  const auto ref = gen.activation_contexts(in, spec);
  ContextBatch batch;
  gen.activation_contexts_into(in, spec, batch);
  ASSERT_EQ(batch.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    expect_ctx_equal(batch, i, ref[i]);
}

TEST(ContextBatch, WeightContextsMatchScalarPath) {
  nn::Conv2D conv("c", nn::ConvSpec{2, 5, 3, 3, 1, 1}, 4);
  ContextGenerator gen(conv.spec().patch_len(), 5);
  const auto ref = gen.weight_contexts(conv);
  const ContextBatch batch = gen.weight_context_batch(conv);
  ASSERT_EQ(batch.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    expect_ctx_equal(batch, i, ref[i]);

  nn::Linear fc("f", 8, 3, 6);
  ContextGenerator fgen(8, 7);
  const auto fref = fgen.weight_contexts(fc);
  const ContextBatch fbatch = fgen.weight_context_batch(fc);
  ASSERT_EQ(fbatch.size(), fref.size());
  for (std::size_t i = 0; i < fref.size(); ++i)
    expect_ctx_equal(fbatch, i, fref[i]);
}

TEST(ContextBatch, FlatActivationMatchesScalarPath) {
  ContextGenerator gen(12, 9);
  nn::Tensor in({1, 3, 2, 2});
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(i) - 5.5f;
  const Context ref = gen.activation_context_flat(in);
  ContextBatch batch;
  gen.activation_context_flat_into(in, batch);
  ASSERT_EQ(batch.size(), 1u);
  expect_ctx_equal(batch, 0, ref);
}

TEST(ContextBatch, PrefixHashLengthMatchesFullHashPrefix) {
  // Hashing straight to k bits (the engine's online path) must equal the
  // first k bits of the full-width signature.
  nn::ConvSpec spec{1, 1, 2, 2, 1, 0};
  ContextGenerator gen(spec.patch_len(), 31);
  nn::Tensor in({1, 1, 4, 4});
  Rng rng(13);
  for (std::size_t i = 0; i < in.numel(); ++i)
    in[i] = static_cast<float>(rng.gaussian());
  ContextBatch full, pre;
  gen.activation_contexts_into(in, spec, full);
  for (std::size_t k : {std::size_t{256}, std::size_t{512}}) {
    gen.activation_contexts_into(in, spec, pre, 0, k);
    ASSERT_EQ(pre.size(), full.size());
    ASSERT_EQ(pre.sig_bits(), k);
    for (std::size_t i = 0; i < pre.size(); ++i) {
      for (std::size_t w = 0; w < pre.words_per_sig(); ++w)
        ASSERT_EQ(pre.sig(i)[w], full.sig(i)[w]) << "k=" << k;
      EXPECT_EQ(pre.norm_code(i), full.norm_code(i));
      EXPECT_EQ(pre.exact_norm(i), full.exact_norm(i));
    }
  }
}

TEST(ContextBatch, ArenaReuseAcrossLayerShapes) {
  // One batch reused large -> small -> large (the Worker's usage pattern)
  // must stay correct; capacity may be retained but contents must match.
  ContextGenerator big(27, 41), small(4, 42);
  nn::ConvSpec big_spec{3, 1, 3, 3, 1, 0};
  nn::ConvSpec small_spec{1, 1, 2, 2, 1, 0};
  nn::Tensor big_in({1, 3, 6, 6}), small_in({1, 1, 3, 3});
  Rng rng(14);
  for (std::size_t i = 0; i < big_in.numel(); ++i)
    big_in[i] = static_cast<float>(rng.gaussian());
  for (std::size_t i = 0; i < small_in.numel(); ++i)
    small_in[i] = static_cast<float>(rng.gaussian());

  ContextBatch batch;
  big.activation_contexts_into(big_in, big_spec, batch);
  small.activation_contexts_into(small_in, small_spec, batch);
  const auto small_ref = small.activation_contexts(small_in, small_spec);
  ASSERT_EQ(batch.size(), small_ref.size());
  for (std::size_t i = 0; i < small_ref.size(); ++i)
    expect_ctx_equal(batch, i, small_ref[i]);

  big.activation_contexts_into(big_in, big_spec, batch);
  const auto big_ref = big.activation_contexts(big_in, big_spec);
  ASSERT_EQ(batch.size(), big_ref.size());
  for (std::size_t i = 0; i < big_ref.size(); ++i)
    expect_ctx_equal(batch, i, big_ref[i]);
}

}  // namespace
}  // namespace deepcam::core
