#include "hash/simhash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "hash/cosine_approx.hpp"

namespace deepcam::hash {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  deepcam::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

double exact_dot(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += double(a[i]) * b[i];
  return s;
}

TEST(L2Norm, KnownValues) {
  std::vector<float> v = {3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(l2_norm(v), 5.0);
  std::vector<float> zero(10, 0.0f);
  EXPECT_DOUBLE_EQ(l2_norm(zero), 0.0);
}

TEST(SimHasher, SignatureNormMatchesL2) {
  SimHasher h(16, 1);
  const auto v = random_vec(16, 2);
  const Signature s = h.hash(v);
  EXPECT_DOUBLE_EQ(s.norm, l2_norm(v));
  EXPECT_EQ(s.bits.size(), kMaxHashBits);
}

TEST(SimHasher, SelfAngleIsZero) {
  SimHasher h(8, 3);
  const auto v = random_vec(8, 4);
  const Signature s = h.hash(v);
  for (std::size_t k : {256u, 512u, 768u, 1024u})
    EXPECT_DOUBLE_EQ(h.estimate_angle(s, s, k), 0.0);
}

TEST(SimHasher, OppositeVectorsNearPi) {
  SimHasher h(8, 5);
  auto v = random_vec(8, 6);
  auto neg = v;
  for (auto& x : neg) x = -x;
  const Signature a = h.hash(v);
  const Signature b = h.hash(neg);
  // sign(x.C) and sign(-x.C) differ in every bit (ties measure-zero).
  EXPECT_NEAR(h.estimate_angle(a, b, 1024), 3.14159265, 1e-6);
}

TEST(SimHasher, PaperExampleFig2) {
  // The paper's §II-B example: algebraic dot-product 2.0765. The approx
  // dot should converge toward it as the hash length grows.
  std::vector<float> x = {0.6012f, 0.8383f, 0.6859f, 0.5712f};
  std::vector<float> y = {0.9044f, 0.5352f, 0.8110f, 0.9243f};
  const double exact = exact_dot(x, y);
  EXPECT_NEAR(exact, 2.0765, 1e-3);
  // Average over independent hashers to control SimHash variance.
  double err_short = 0.0, err_long = 0.0;
  const int trials = 16;
  for (int t = 0; t < trials; ++t) {
    SimHasher h(4, 100 + static_cast<std::uint64_t>(t));
    const Signature a = h.hash(x);
    const Signature b = h.hash(y);
    err_short +=
        std::abs(h.approx_dot(a, b, 64, /*use_pwl=*/false) - exact);
    err_long +=
        std::abs(h.approx_dot(a, b, 1024, /*use_pwl=*/false) - exact);
  }
  err_short /= trials;
  err_long /= trials;
  EXPECT_LT(err_long, err_short + 0.05);  // longer hashes at least as good
  EXPECT_LT(err_long / exact, 0.15);      // within ~15% at k=1024
}

TEST(SimHasher, ApproxDotTracksExactForRandomVectors) {
  const std::size_t n = 64;
  SimHasher h(n, 7);
  double rel_err_sum = 0.0;
  int count = 0;
  for (std::uint64_t s = 0; s < 20; ++s) {
    const auto a = random_vec(n, 200 + s);
    const auto b = random_vec(n, 300 + s);
    const double exact = exact_dot(a, b);
    const double norm_product = l2_norm(a) * l2_norm(b);
    if (std::abs(exact) < 0.05 * norm_product) continue;  // ill-conditioned
    const Signature sa = h.hash(a);
    const Signature sb = h.hash(b);
    const double approx = h.approx_dot(sa, sb, 1024, /*use_pwl=*/false);
    rel_err_sum += std::abs(approx - exact) / norm_product;
    ++count;
  }
  ASSERT_GT(count, 5);
  // Mean deviation relative to |x||y| stays small at k=1024.
  EXPECT_LT(rel_err_sum / count, 0.08);
}

// Property: prefix-derived hashes (our VHL trick) have the same estimation
// quality as independently drawn matrices of that length.
TEST(SimHasher, PrefixHashStatisticallyEquivalentToFresh) {
  const std::size_t n = 32, k = 256;
  const auto x = random_vec(n, 50);
  const auto y = random_vec(n, 51);
  const double true_angle =
      std::acos(exact_dot(x, y) / (l2_norm(x) * l2_norm(y)));

  double prefix_est = 0.0, fresh_est = 0.0;
  const int trials = 24;
  for (int t = 0; t < trials; ++t) {
    SimHasher big(n, 400 + static_cast<std::uint64_t>(t));  // 1024-bit
    prefix_est += big.estimate_angle(big.hash(x), big.hash(y), k);
    SimHasher small(n, 700 + static_cast<std::uint64_t>(t), k);
    small.hash(x);
    fresh_est += small.estimate_angle(small.hash(x), small.hash(y), k);
  }
  prefix_est /= trials;
  fresh_est /= trials;
  EXPECT_NEAR(prefix_est, true_angle, 0.12);
  EXPECT_NEAR(fresh_est, true_angle, 0.12);
  EXPECT_NEAR(prefix_est, fresh_est, 0.15);
}

class HashLengthErrorSweep : public ::testing::TestWithParam<int> {};

// Fig. 2 property: approximation error decreases (stochastically) with k.
TEST_P(HashLengthErrorSweep, ErrorWithinJLBound) {
  const std::size_t k = static_cast<std::size_t>(GetParam());
  const std::size_t n = 32;
  double mean_abs_angle_err = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto a = random_vec(n, 900 + static_cast<std::uint64_t>(t));
    const auto b = random_vec(n, 1900 + static_cast<std::uint64_t>(t));
    const double cosv =
        exact_dot(a, b) / (l2_norm(a) * l2_norm(b));
    const double angle = std::acos(std::clamp(cosv, -1.0, 1.0));
    SimHasher h(n, 5000 + static_cast<std::uint64_t>(t));
    const double est = h.estimate_angle(h.hash(a), h.hash(b), k);
    mean_abs_angle_err += std::abs(est - angle);
  }
  mean_abs_angle_err /= trials;
  // E|err| <= ~pi * sqrt(p(1-p)/k) <= pi/(2 sqrt(k)); allow 2.5x slack.
  EXPECT_LT(mean_abs_angle_err, 2.5 * 3.141592 / (2.0 * std::sqrt(double(k))))
      << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(HashLengths, HashLengthErrorSweep,
                         ::testing::Values(256, 512, 768, 1024));

}  // namespace
}  // namespace deepcam::hash
