#include "nn/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace deepcam::nn {
namespace {

TEST(SyntheticDigits, GeometryAndLabels) {
  SyntheticDigits ds(200, 1);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.num_classes(), 10u);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE((ds.sample(i).image.shape() == Shape{1, 1, 28, 28}));
    EXPECT_LT(ds.sample(i).label, 10u);
  }
}

TEST(SyntheticDigits, Deterministic) {
  SyntheticDigits a(50, 7), b(50, 7);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.sample(i).label, b.sample(i).label);
    for (std::size_t p = 0; p < a.sample(i).image.numel(); ++p)
      EXPECT_EQ(a.sample(i).image[p], b.sample(i).image[p]);
  }
}

TEST(SyntheticDigits, AllClassesPresent) {
  SyntheticDigits ds(500, 3);
  std::vector<int> counts(10, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) ++counts[ds.sample(i).label];
  for (int c : counts) EXPECT_GT(c, 20);
}

TEST(SyntheticDigits, PixelsClamped) {
  SyntheticDigits ds(100, 5, /*noise=*/1.0);
  for (std::size_t i = 0; i < ds.size(); ++i)
    for (std::size_t p = 0; p < ds.sample(i).image.numel(); ++p) {
      EXPECT_GE(ds.sample(i).image[p], -0.5f);
      EXPECT_LE(ds.sample(i).image[p], 1.5f);
    }
}

TEST(SyntheticDigits, ClassesAreSeparable) {
  // Mean intra-class L2 distance should be well below inter-class distance
  // (the property LeNet training depends on).
  SyntheticDigits ds(400, 11, /*noise=*/0.25);
  // Collect per-class means.
  std::vector<Tensor> mean(10, Tensor({1, 1, 28, 28}));
  std::vector<int> counts(10, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto& s = ds.sample(i);
    ++counts[s.label];
    for (std::size_t p = 0; p < s.image.numel(); ++p)
      mean[s.label][p] += s.image[p];
  }
  for (std::size_t c = 0; c < 10; ++c)
    for (std::size_t p = 0; p < mean[c].numel(); ++p)
      mean[c][p] /= static_cast<float>(std::max(counts[c], 1));
  double intra = 0.0, inter = 0.0;
  int inter_n = 0;
  for (std::size_t a = 0; a < 10; ++a)
    for (std::size_t b = a + 1; b < 10; ++b) {
      double d = 0.0;
      for (std::size_t p = 0; p < mean[a].numel(); ++p) {
        const double diff = mean[a][p] - mean[b][p];
        d += diff * diff;
      }
      inter += std::sqrt(d);
      ++inter_n;
    }
  inter /= inter_n;
  // Intra: distance of samples to own class mean.
  int intra_n = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto& s = ds.sample(i);
    double d = 0.0;
    for (std::size_t p = 0; p < s.image.numel(); ++p) {
      const double diff = s.image[p] - mean[s.label][p];
      d += diff * diff;
    }
    intra += std::sqrt(d);
    ++intra_n;
  }
  intra /= intra_n;
  // Class structure exists but noise is non-trivial.
  EXPECT_GT(inter, 2.0);
  EXPECT_GT(intra, 1.0);
}

TEST(GaussianTextures, GeometryAndDeterminism) {
  GaussianTextures ds(60, 10, 9);
  EXPECT_EQ(ds.size(), 60u);
  EXPECT_EQ(ds.num_classes(), 10u);
  EXPECT_TRUE((ds.sample(0).image.shape() == Shape{1, 3, 32, 32}));
  GaussianTextures ds2(60, 10, 9);
  for (std::size_t p = 0; p < ds.sample(5).image.numel(); ++p)
    EXPECT_EQ(ds.sample(5).image[p], ds2.sample(5).image[p]);
}

TEST(GaussianTextures, HundredClasses) {
  GaussianTextures ds(300, 100, 13);
  EXPECT_EQ(ds.num_classes(), 100u);
  std::size_t max_label = 0;
  for (std::size_t i = 0; i < ds.size(); ++i)
    max_label = std::max(max_label, ds.sample(i).label);
  EXPECT_LT(max_label, 100u);
  EXPECT_GT(max_label, 50u);  // labels spread across range
}

TEST(GaussianTextures, RequiresTwoClasses) {
  EXPECT_THROW(GaussianTextures(10, 1, 1), Error);
}

TEST(Dataset, BatchAssembly) {
  SyntheticDigits ds(20, 15);
  auto [images, labels] = ds.batch({0, 5, 7});
  EXPECT_TRUE((images.shape() == Shape{3, 1, 28, 28}));
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[1], ds.sample(5).label);
  // Image content copied faithfully.
  for (std::size_t p = 0; p < 784; ++p)
    EXPECT_EQ(images[784 + p], ds.sample(5).image[p]);
}

TEST(Dataset, EmptyBatchThrows) {
  SyntheticDigits ds(5, 16);
  EXPECT_THROW(ds.batch({}), Error);
}

}  // namespace
}  // namespace deepcam::nn
