#include "core/hash_tuner.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pointwise.hpp"
#include "nn/pooling.hpp"
#include "nn/topologies.hpp"

namespace deepcam::core {
namespace {

std::vector<nn::Tensor> probes(nn::Shape s, std::size_t count,
                               std::uint64_t seed) {
  deepcam::Rng rng(seed);
  std::vector<nn::Tensor> out;
  for (std::size_t i = 0; i < count; ++i) {
    nn::Tensor t(s);
    for (std::size_t p = 0; p < t.numel(); ++p)
      t[p] = static_cast<float>(rng.gaussian());
    out.push_back(std::move(t));
  }
  return out;
}

TEST(HashTuner, LayerLocalReturnsPerLayerChoice) {
  auto m = nn::make_lenet5(1);
  TunerConfig cfg;
  cfg.mode = TunerMode::kLayerLocal;
  const auto ps = probes({1, 1, 28, 28}, 2, 2);
  const TuneResult r = tune_hash_lengths(*m, ps, cfg);
  EXPECT_EQ(r.layers.size(), 5u);
  EXPECT_EQ(r.hash_bits.size(), 5u);
  for (const auto& l : r.layers) {
    EXPECT_EQ(l.metric.size(), 4u);  // one per candidate length
    EXPECT_GE(l.chosen_bits, 256u);
    EXPECT_LE(l.chosen_bits, 1024u);
  }
  EXPECT_GT(r.mean_hash_bits(), 0.0);
}

TEST(HashTuner, LayerLocalMetricImprovesWithHashLength) {
  auto m = nn::make_lenet5(3);
  TunerConfig cfg;
  cfg.mode = TunerMode::kLayerLocal;
  const auto ps = probes({1, 1, 28, 28}, 2, 4);
  const TuneResult r = tune_hash_lengths(*m, ps, cfg);
  // Relative error at k=1024 should beat k=256 on (nearly) every layer;
  // assert it for the aggregate to be robust to stochastic wiggle.
  double err256 = 0.0, err1024 = 0.0;
  for (const auto& l : r.layers) {
    err256 += l.metric.front();
    err1024 += l.metric.back();
  }
  EXPECT_LT(err1024, err256);
}

TEST(HashTuner, StricterThresholdNeverShrinksHashes) {
  auto m = nn::make_lenet5(5);
  const auto ps = probes({1, 1, 28, 28}, 2, 6);
  TunerConfig loose;
  loose.max_rel_error = 0.5;
  TunerConfig strict;
  strict.max_rel_error = 0.05;
  const TuneResult rl = tune_hash_lengths(*m, ps, loose);
  const TuneResult rs = tune_hash_lengths(*m, ps, strict);
  for (std::size_t i = 0; i < rl.hash_bits.size(); ++i)
    EXPECT_LE(rl.hash_bits[i], rs.hash_bits[i]) << "layer " << i;
}

TEST(HashTuner, EndToEndModeOnTinyModel) {
  nn::Model m("tiny");
  m.add(std::make_unique<nn::Conv2D>("c", nn::ConvSpec{1, 4, 3, 3, 1, 0}, 7));
  m.add(std::make_unique<nn::ReLU>("r"));
  m.add(std::make_unique<nn::Flatten>("f"));
  m.add(std::make_unique<nn::Linear>("fc", 4 * 36, 5, 8));
  TunerConfig cfg;
  cfg.mode = TunerMode::kEndToEnd;
  cfg.min_agreement = 0.5;
  const auto ps = probes({1, 1, 8, 8}, 6, 9);
  const TuneResult r = tune_hash_lengths(m, ps, cfg);
  EXPECT_EQ(r.hash_bits.size(), 2u);
  for (const auto& l : r.layers)
    for (double a : l.metric) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
}

TEST(HashTuner, TunedConfigRunsOnAccelerator) {
  auto m = nn::make_lenet5(10);
  const auto ps = probes({1, 1, 28, 28}, 2, 11);
  TunerConfig tcfg;
  const TuneResult r = tune_hash_lengths(*m, ps, tcfg);
  DeepCamConfig cfg;
  cfg.layer_hash_bits = r.hash_bits;
  DeepCamAccelerator acc(*m, cfg);
  RunReport rep;
  acc.run(ps[0], &rep);
  for (std::size_t i = 0; i < rep.layers.size(); ++i)
    EXPECT_EQ(rep.layers[i].hash_bits, r.hash_bits[i]);
}

TEST(HashTuner, AgreementMetricFullHash) {
  auto m = nn::make_lenet5(12);
  const auto ps = probes({1, 1, 28, 28}, 4, 13);
  DeepCamConfig cfg;
  cfg.default_hash_bits = 1024;
  const double agreement = deepcam_agreement(*m, ps, cfg);
  EXPECT_GE(agreement, 0.0);
  EXPECT_LE(agreement, 1.0);
}

TEST(HashTuner, JointRefineNeverShrinksAndMeetsTargetOrMaxes) {
  auto m = nn::make_lenet5(20);
  const auto ps = probes({1, 1, 28, 28}, 4, 21);
  TunerConfig base;
  base.mode = TunerMode::kLayerLocal;
  base.max_rel_error = 0.6;  // deliberately loose per-layer choices
  const TuneResult plain = tune_hash_lengths(*m, ps, base);
  TunerConfig refined_cfg = base;
  refined_cfg.joint_refine = true;
  refined_cfg.min_agreement = 1.0;
  const TuneResult refined = tune_hash_lengths(*m, ps, refined_cfg);
  ASSERT_EQ(plain.hash_bits.size(), refined.hash_bits.size());
  for (std::size_t i = 0; i < plain.hash_bits.size(); ++i)
    EXPECT_GE(refined.hash_bits[i], plain.hash_bits[i]);
  // Outcome contract: either the joint target is met or some budget grew
  // all the way to the maximum hash length.
  DeepCamConfig dc;
  dc.layer_hash_bits = refined.hash_bits;
  const double agreement = deepcam_agreement(*m, ps, dc);
  bool any_maxed = false;
  for (auto k : refined.hash_bits) any_maxed |= (k == hash::kMaxHashBits);
  EXPECT_TRUE(agreement >= refined_cfg.min_agreement || any_maxed);
}

TEST(HashTuner, EmptyProbesThrow) {
  auto m = nn::make_lenet5(14);
  EXPECT_THROW(tune_hash_lengths(*m, {}, {}), deepcam::Error);
  EXPECT_THROW(deepcam_agreement(*m, {}, {}), deepcam::Error);
}

}  // namespace
}  // namespace deepcam::core
