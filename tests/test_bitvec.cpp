#include "common/bitvec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace deepcam {
namespace {

TEST(BitVec, StartsZeroed) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(130);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(0);
  EXPECT_FALSE(v.get(0));
  v.flip(1);
  EXPECT_TRUE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, SetFalseClears) {
  BitVec v(10);
  v.set(5, true);
  v.set(5, false);
  EXPECT_FALSE(v.get(5));
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(64);
  EXPECT_THROW(v.get(64), Error);
  EXPECT_THROW(v.set(64, true), Error);
  EXPECT_THROW(v.flip(100), Error);
}

TEST(BitVec, HammingBasics) {
  BitVec a(128), b(128);
  EXPECT_EQ(a.hamming(b), 0u);
  a.set(3, true);
  EXPECT_EQ(a.hamming(b), 1u);
  b.set(3, true);
  EXPECT_EQ(a.hamming(b), 0u);
  b.set(127, true);
  EXPECT_EQ(a.hamming(b), 1u);
}

TEST(BitVec, HammingLengthMismatchThrows) {
  BitVec a(64), b(65);
  EXPECT_THROW(a.hamming(b), Error);
}

TEST(BitVec, HammingPrefixMatchesManualCount) {
  Rng rng(11);
  BitVec a(1024), b(1024);
  for (std::size_t i = 0; i < 1024; ++i) {
    a.set(i, rng.uniform() < 0.5);
    b.set(i, rng.uniform() < 0.5);
  }
  for (std::size_t k : {1u, 63u, 64u, 65u, 256u, 511u, 768u, 1000u, 1024u}) {
    std::size_t manual = 0;
    for (std::size_t i = 0; i < k; ++i)
      if (a.get(i) != b.get(i)) ++manual;
    EXPECT_EQ(a.hamming_prefix(b, k), manual) << "k=" << k;
  }
}

TEST(BitVec, HammingPrefixFullEqualsHamming) {
  Rng rng(12);
  BitVec a(512), b(512);
  for (std::size_t i = 0; i < 512; ++i) {
    a.set(i, rng.uniform() < 0.5);
    b.set(i, rng.uniform() < 0.3);
  }
  EXPECT_EQ(a.hamming_prefix(b, 512), a.hamming(b));
}

TEST(BitVec, PrefixCopy) {
  BitVec a(256);
  a.set(0, true);
  a.set(70, true);
  a.set(200, true);
  BitVec p = a.prefix(128);
  EXPECT_EQ(p.size(), 128u);
  EXPECT_TRUE(p.get(0));
  EXPECT_TRUE(p.get(70));
  EXPECT_EQ(p.popcount(), 2u);  // bit 200 dropped
}

TEST(BitVec, PrefixMasksPartialWord) {
  BitVec a(128);
  for (std::size_t i = 0; i < 128; ++i) a.set(i, true);
  BitVec p = a.prefix(70);
  EXPECT_EQ(p.popcount(), 70u);
}

TEST(BitVec, EqualityIncludesLength) {
  BitVec a(64), b(64), c(65);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b.set(0, true);
  EXPECT_FALSE(a == b);
}

// Property: Hamming distance is a metric (symmetry + triangle inequality)
// on random vectors.
class BitVecMetricTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitVecMetricTest, MetricAxioms) {
  Rng rng(GetParam());
  const std::size_t n = 256;
  BitVec a(n), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.set(i, rng.uniform() < 0.5);
    b.set(i, rng.uniform() < 0.5);
    c.set(i, rng.uniform() < 0.5);
  }
  EXPECT_EQ(a.hamming(b), b.hamming(a));
  EXPECT_EQ(a.hamming(a), 0u);
  EXPECT_LE(a.hamming(c), a.hamming(b) + b.hamming(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVecMetricTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

BitVec random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.uniform() < 0.5);
  return v;
}

// assign_prefix is the CAM row-program hot path and copies whole 64-bit
// words with a masked tail — the word-boundary cases are exactly where a
// mask slip would corrupt rows. Property checked at every boundary k:
// bits [0,k) equal the source, bits [k,size) are zero, length unchanged.
class BitVecAssignPrefixTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecAssignPrefixTest, CopiesPrefixZeroesTailAtWordBoundaries) {
  const std::size_t k = GetParam();
  const BitVec src = random_vec(1024, 0xABCDEF + k);
  BitVec dst = random_vec(1024, 0x123456 + k);  // pre-dirtied destination
  dst.assign_prefix(src, k);
  ASSERT_EQ(dst.size(), 1024u);
  for (std::size_t i = 0; i < 1024; ++i)
    ASSERT_EQ(dst.get(i), i < k ? src.get(i) : false) << "bit " << i;
  // Idempotent: re-assigning the same prefix changes nothing.
  const BitVec once = dst;
  dst.assign_prefix(src, k);
  EXPECT_TRUE(dst == once);
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitVecAssignPrefixTest,
                         ::testing::Values(0, 1, 63, 64, 65, 127, 128, 129,
                                           255, 256, 511, 512, 1023, 1024));

TEST(BitVec, AssignPrefixFromShorterSource) {
  // Source shorter than destination: any k <= src.size() is legal and the
  // whole destination tail beyond k must be cleared, including the words
  // the short source never had.
  for (const std::size_t src_bits : {65, 128, 200}) {
    const BitVec src = random_vec(src_bits, src_bits);
    for (const std::size_t k : {std::size_t{0}, std::size_t{63},
                                std::size_t{64}, src_bits}) {
      BitVec dst = random_vec(1024, 99 + k);
      dst.assign_prefix(src, k);
      for (std::size_t i = 0; i < 1024; ++i)
        ASSERT_EQ(dst.get(i), i < k ? src.get(i) : false)
            << "src_bits=" << src_bits << " k=" << k << " bit " << i;
    }
  }
}

TEST(BitVec, AssignPrefixWholeVectorEqualsSource) {
  const BitVec src = random_vec(1024, 7);
  BitVec dst(1024);
  dst.assign_prefix(src, 1024);
  EXPECT_TRUE(dst == src);
}

TEST(BitVec, AssignPrefixRangeChecks) {
  const BitVec src(128);
  BitVec dst(64);
  EXPECT_THROW(dst.assign_prefix(src, 65), Error);   // k > dest size
  BitVec big(256);
  EXPECT_THROW(big.assign_prefix(src, 129), Error);  // k > source size
  EXPECT_NO_THROW(big.assign_prefix(src, 128));
}

TEST(BitVec, AssignPrefixAgreesWithPerBitReference) {
  // Cross-check the word-copy implementation against the per-bit loop it
  // replaced, on lengths straddling every word boundary.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const BitVec src = random_vec(320, seed);
    for (std::size_t k = 0; k <= 320; k += 7) {
      BitVec fast = random_vec(320, seed + 1000);
      BitVec ref(320);
      for (std::size_t i = 0; i < k; ++i) ref.set(i, src.get(i));
      fast.assign_prefix(src, k);
      ASSERT_TRUE(fast == ref) << "seed=" << seed << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace deepcam
