// deepcam — the single CLI over the declarative run-spec facade.
//
//   deepcam run     specs/quickstart.json          offline engine batch
//   deepcam compare specs/table1.json --csv        backend sweep (Table I)
//   deepcam serve   specs/serve_demo.json          online serving replay
//   deepcam tune    specs/fig5_tune.json           VHL hash-length tuner
//   deepcam plan    specs/plan_lenet.json          cost-model plan search
//
// The subcommand is a guard, not a selector: it must agree with the spec's
// "mode" field ("run" is the offline alias), so a spec never silently runs
// as something it wasn't written for. Flags:
//
//   --json PATH  write the Outcome JSON artifact (overrides outputs.json;
//                "-" = stdout)
//   --csv        dump CSV to stdout (offline/compare)
//   --quiet      suppress the human-readable summary
//   --check      verify mode-specific invariants after the run; nonzero
//                exit on violation (CI spec-smoke gate). For compare specs
//                this includes the bitwise facade-vs-engine cross-check the
//                compare_platforms example pioneered.
//   --trace PATH    export the span trace (".csv" = CSV, otherwise Chrome
//                   trace-event JSON for Perfetto); offline/serve
//   --metrics PATH  write the Prometheus text exposition after a serve run
//   --profile       record kernel-stage spans and print the per-stage table
//   --validate      plan/tune: fall back to measured runs (plan mode cross-
//                   checks the cost model against the sim backend; tune mode
//                   runs the empirical sweep instead of the guided pass)
//
// Exit codes: 0 ok, 1 run/check failure, 2 usage or spec errors.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "deepcam/deepcam.hpp"

using namespace deepcam;

namespace {

/// Offline invariant: the aggregate really is the per-sample merge and the
/// run did simulated work.
bool check_offline(const OfflineOutcome& out, const Spec& spec) {
  const core::BatchReport& br = out.report;
  bool ok = br.samples == spec.offline.batch &&
            br.per_sample.size() == br.samples &&
            br.aggregate.total_cycles() > 0;
  std::size_t cycles = 0;
  double energy = 0.0;
  for (const auto& r : br.per_sample) {
    cycles += r.total_cycles();
    energy += r.total_energy();
  }
  ok = ok && cycles == br.aggregate.total_cycles();
  std::printf("check offline: %zu samples, aggregate %zu cycles vs "
              "per-sample sum %zu, energy %.3e J -> %s\n",
              br.samples, br.aggregate.total_cycles(), cycles, energy,
              ok ? "OK" : "FAIL");
  return ok;
}


/// Serve invariants: every trace event was either answered or rejected —
/// nothing lost, nothing double-counted — and the SLO accounting is
/// internally consistent: sheds are a subset of rejections, per-class
/// accepted counts equal per-class completions (exactly-once answering),
/// and goodput never exceeds throughput.
bool check_serve(const ServeOutcome& out) {
  const std::size_t answered = out.load.sent + out.load.rejected;
  bool ok = answered == out.trace_events &&
            out.summary.total_completed() == out.load.sent;
  ok = ok && out.load.shed <= out.load.rejected;
  ok = ok && out.summary.total_shed() <= out.summary.total_rejected();
  ok = ok && out.summary.total_slo_met() <= out.summary.total_completed();
  ok = ok && out.summary.total_expired() <= out.summary.total_completed();
  for (const auto& c : out.summary.classes) {
    ok = ok && c.accepted == c.completed;  // exactly-once per class
    ok = ok && c.slo_met + c.expired + c.errors <= c.completed;
  }
  // Fault-tolerance conservation: every accepted request is answered exactly
  // once even when it was retried or hedged — retries/hedges never inflate
  // (or deplete) the completion counts, they only add replica work.
  for (const auto& sess : out.summary.sessions) {
    ok = ok && sess.accepted == sess.completed;
    ok = ok && sess.errors + sess.expired <= sess.completed;
  }
  ok = ok && out.summary.total_failovers <= out.summary.total_retries;
  ok = ok && out.summary.total_hedges_won <= out.summary.total_hedges;
  ok = ok && out.summary.total_hedges_wasted <= out.summary.total_hedges;
  std::size_t replica_batches = 0, session_batches = 0;
  for (const auto& r : out.summary.replicas) {
    ok = ok && (r.health == "healthy" || r.health == "degraded" ||
                r.health == "quarantined" || r.health == "recovering");
    ok = ok && r.quarantine_seconds >= 0.0;
    replica_batches += r.batches;
  }
  for (const auto& sess : out.summary.sessions) session_batches += sess.batches;
  // Every replica success comes from one dispatched micro-batch attempt; a
  // hedged attempt can land on two replicas, so hedges bound the overshoot.
  ok = ok && replica_batches <= session_batches + out.summary.total_hedges;
  std::printf("check serve: %zu events = %zu sent + %zu rejected "
              "(%zu shed), %llu completed, %llu SLO met, %llu expired, "
              "%llu downgraded, %llu retries, %llu hedges -> %s\n",
              out.trace_events, out.load.sent, out.load.rejected,
              out.load.shed,
              static_cast<unsigned long long>(out.summary.total_completed()),
              static_cast<unsigned long long>(out.summary.total_slo_met()),
              static_cast<unsigned long long>(out.summary.total_expired()),
              static_cast<unsigned long long>(
                  out.summary.total_downgraded()),
              static_cast<unsigned long long>(out.summary.total_retries),
              static_cast<unsigned long long>(out.summary.total_hedges),
              ok ? "OK" : "FAIL");
  return ok;
}

/// Plan invariants: re-running the same spec in-process must come back as a
/// cache hit with byte-identical plan JSON (the determinism contract), every
/// chosen hash length sits in the candidate set, and the cache counters
/// recorded at least one hit.
bool check_plan(const PlanOutcome& out, const Spec& spec) {
  bool ok = !out.entries.empty();
  for (const auto& e : out.entries) {
    ok = ok && e.plan.hash_bits.size() == e.plan.floors.size() &&
         !e.plan.hash_bits.empty();
    for (const std::size_t k : e.plan.hash_bits)
      ok = ok && k >= 256 && k <= 1024 && k % 256 == 0;
    if (e.validated) ok = ok && e.cycle_rel_error <= 0.15;
  }
  // Second run through the same process-wide cache: identical bytes, hit.
  const Outcome rerun = Runner().run(spec);
  const PlanOutcome& warm = rerun.plan();
  ok = ok && warm.entries.size() == out.entries.size();
  for (std::size_t i = 0; ok && i < warm.entries.size(); ++i) {
    ok = warm.entries[i].cache_hit &&
         plan::plan_to_json(warm.entries[i].plan) ==
             plan::plan_to_json(out.entries[i].plan);
  }
  ok = ok && warm.cache.hits > 0;
  std::printf("check plan: %zu workloads, warm rerun %llu hits / "
              "%llu misses -> %s\n",
              out.entries.size(),
              static_cast<unsigned long long>(warm.cache.hits),
              static_cast<unsigned long long>(warm.cache.misses),
              ok ? "OK" : "FAIL");
  return ok;
}

/// Tune invariant: one choice per CAM layer, all in the candidate set.
bool check_tune(const TuneOutcome& out) {
  bool ok = !out.entries.empty();
  for (const auto& e : out.entries) {
    ok = ok && e.result.layers.size() == e.result.hash_bits.size() &&
         !e.result.layers.empty();
    for (const std::size_t k : e.result.hash_bits)
      ok = ok && k >= 256 && k <= 1024 && k % 256 == 0;
  }
  std::printf("check tune: %zu workloads -> %s\n", out.entries.size(),
              ok ? "OK" : "FAIL");
  return ok;
}

bool run_checks(const Outcome& outcome, const Spec& spec) {
  switch (outcome.mode) {
    case Mode::kOffline: return check_offline(outcome.offline(), spec);
    // Compare invariant: every "deepcam" row bitwise equals the direct
    // InferenceEngine path (shared helper, also used by the example).
    case Mode::kCompare:
      return verify_deepcam_rows(spec, outcome.compare());
    case Mode::kServe: return check_serve(outcome.serve());
    case Mode::kTune: return check_tune(outcome.tune());
    case Mode::kPlan: return check_plan(outcome.plan(), spec);
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false, csv = false, quiet = false, profile = false;
  bool validate = false;
  std::string json_path, trace_path, metrics_path;
  cli::Flags flags("deepcam",
                   "run a declarative DeepCAM spec (see specs/*.json)");
  flags.flag("check", &check, "verify mode invariants; nonzero exit on fail")
      .option("json", &json_path, "write Outcome JSON here (\"-\" = stdout)")
      .flag("csv", &csv, "dump CSV to stdout (offline/compare)")
      .flag("quiet", &quiet, "suppress the human-readable summary")
      .option("trace", &trace_path,
              "export the span trace (.csv = CSV, else Perfetto JSON)")
      .option("metrics", &metrics_path,
              "write the Prometheus exposition (serve mode)")
      .flag("profile", &profile,
            "record kernel-stage spans; print the per-stage table")
      .flag("validate", &validate,
            "plan/tune: cross-check or replace the model-guided pass with "
            "measured runs")
      .positional(2, 2, "<run|compare|serve|tune|plan> <spec.json>");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "deepcam: %s\n%s", flags.error().c_str(),
                 flags.usage().c_str());
    return 2;
  }

  try {
    const Mode command = mode_from_name(flags.args()[0]);
    Spec spec = spec_from_file(flags.args()[1]);
    // Observability flags override the spec's outputs section; re-validate
    // so a flag on the wrong mode fails with the spec error, not mid-run.
    if (!trace_path.empty()) spec.outputs.trace_path = trace_path;
    if (!metrics_path.empty()) spec.outputs.metrics_path = metrics_path;
    if (profile) spec.outputs.profile = true;
    if (validate) spec.plan.validate = true;
    spec.validate();
    if (spec.mode != command) {
      std::fprintf(stderr,
                   "deepcam: spec %s has mode \"%s\" but the %s subcommand "
                   "was given\n",
                   flags.args()[1].c_str(), mode_name(spec.mode),
                   flags.args()[0].c_str());
      return 2;
    }

    const Outcome outcome = Runner().run(spec);

    if (!quiet && !spec.outputs.trace_path.empty())
      std::printf("wrote %s\n", spec.outputs.trace_path.c_str());
    if (!quiet && !spec.outputs.metrics_path.empty())
      std::printf("wrote %s\n", spec.outputs.metrics_path.c_str());
    if (spec.outputs.text && !quiet)
      std::printf("%s", outcome_text(outcome).c_str());
    if (spec.outputs.csv || csv) {
      const std::string dump = outcome_csv(outcome);
      if (!dump.empty()) std::printf("%s", dump.c_str());
    }

    if (json_path.empty()) json_path = spec.outputs.json_path;
    if (!json_path.empty()) {
      const std::string doc =
          outcome_to_json(outcome, spec.outputs.per_sample);
      if (json_path == "-") {
        std::printf("%s\n", doc.c_str());
      } else {
        std::ofstream out(json_path, std::ios::binary);
        out << doc << "\n";
        if (!out.good()) {
          std::fprintf(stderr, "deepcam: failed to write %s\n",
                       json_path.c_str());
          return 1;
        }
        if (!quiet) std::printf("wrote %s\n", json_path.c_str());
      }
    }

    if (check && !run_checks(outcome, spec)) {
      std::fprintf(stderr, "deepcam: --check failed\n");
      return 1;
    }
    return 0;
  } catch (const ParseError& e) {
    std::fprintf(stderr, "deepcam: %s: %s\n", flags.args()[1].c_str(),
                 e.what());
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "deepcam: %s\n", e.what());
    return 2;
  }
}
